//! Write batching / group commit: throughput vs client batch size.
//!
//! The ROADMAP's "write batching / group commit across partitions" item:
//! clients buffer write-class operations into a
//! [`prism_types::WriteBatch`] and submit it once per `batch_size`
//! entries; PrismDB groups the entries by partition, takes each
//! partition's write lock once, merges duplicate-key slab writes inside
//! the group, and runs one watermark check per partition per batch (see
//! `PrismDb::apply_batch`). This sweep measures how that amortisation
//! converts into throughput on a write-heavy (YCSB-A) and an insert-heavy
//! (YCSB-D) mix as client threads grow, using
//! [`crate::Runner::run_threaded_batched`]'s virtual-time model (a
//! batch's latency is charged once to its client and proportionally to
//! the shards it touched).

use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, write_bench_json, Table};
use crate::{Runner, Scale};

/// Client batch sizes compared (1 = the per-op path).
pub const BATCH_SIZES: [usize; 3] = [1, 8, 64];

/// Run one workload through every thread count × batch size. Row labels
/// are `"<workload>/t<threads>/b<batch>"`.
pub fn sweep_with(
    scale: &Scale,
    workloads: &[Workload],
    threads: &[usize],
    batch_sizes: &[usize],
) -> Table {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;
    let mut table = Table::new(
        "Write batching: client batch size vs throughput (group commit per partition)",
        &[
            "config",
            "Kops/s",
            "groups",
            "entries",
            "merged dups",
            "stall (ms)",
        ],
    );
    for workload in workloads {
        for &t in threads {
            for &batch in batch_sizes {
                // Fresh engine per point so points differ only in the
                // submission model.
                let db = engines::prismdb_shared(keys);
                let result = runner.run_threaded_batched(&db, workload, t, batch);
                table.add_row(vec![
                    format!("{}/t{}/b{}", workload.name, t, batch),
                    fmt_f64(result.throughput_kops),
                    result.stats.batch_groups.to_string(),
                    result.stats.batch_entries.to_string(),
                    result.stats.batch_merged_writes.to_string(),
                    fmt_f64(result.stats.compaction.stall_time.as_millis() as f64),
                ]);
            }
        }
    }
    table.print();
    table
}

/// The full sweep: YCSB-A and YCSB-D × 1/2/4 client threads × batch size
/// 1/8/64.
pub fn sweep(scale: &Scale) -> Table {
    let keys = scale.record_count;
    sweep_with(
        scale,
        &[Workload::ycsb_a(keys), Workload::ycsb_d(keys)],
        &[1, 2, 4],
        &BATCH_SIZES,
    )
}

/// Run the sweep and emit `BENCH_write_batching.json` plus the sweep's
/// `BENCH_summary.json` entry.
pub fn run(scale: &Scale) -> Vec<Table> {
    let table = sweep(scale);
    write_bench_json("write_batching", std::slice::from_ref(&table));
    if let Some(entry) =
        crate::report::SummaryEntry::best_of("write_batching", &table, "Kops/s", scale.record_count)
    {
        crate::report::update_bench_summary(&entry);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_f64(table: &Table, row: &str, col: &str) -> f64 {
        table
            .cell(row, col)
            .unwrap_or_else(|| panic!("missing cell {row}/{col}"))
            .parse()
            .unwrap()
    }

    /// The acceptance bar for this PR: on the write-heavy mix at 4
    /// client threads, batch=64 must strictly beat batch=1 throughput.
    /// Throughputs come from the virtual-time model, but real thread
    /// interleaving still perturbs shared engine state (cache contents,
    /// compaction victims) between runs, so each configuration is
    /// measured three times and the medians are compared.
    #[test]
    fn batch64_beats_batch1_on_write_heavy_mix() {
        let scale = Scale::quick();
        let keys = scale.record_count;
        let mut b1_runs = Vec::new();
        let mut b64_runs = Vec::new();
        let mut last = None;
        for _ in 0..3 {
            let table = sweep_with(&scale, &[Workload::ycsb_a(keys)], &[4], &[1, 64]);
            b1_runs.push(cell_f64(&table, "ycsb-a/t4/b1", "Kops/s"));
            b64_runs.push(cell_f64(&table, "ycsb-a/t4/b64", "Kops/s"));
            last = Some(table);
        }
        let median = |runs: &mut Vec<f64>| {
            runs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            runs[runs.len() / 2]
        };
        let b1 = median(&mut b1_runs);
        let b64 = median(&mut b64_runs);
        assert!(
            b64 > b1,
            "batch=64 median throughput {b64:.1} Kops/s must strictly beat \
             batch=1 {b1:.1} Kops/s ({b64_runs:?} vs {b1_runs:?})"
        );
        // The batched run must actually have gone through the batched
        // path, and zipfian write skew must have merged duplicate keys.
        let table = last.expect("three sweeps ran");
        let groups = cell_f64(&table, "ycsb-a/t4/b64", "groups");
        let entries = cell_f64(&table, "ycsb-a/t4/b64", "entries");
        let merged = cell_f64(&table, "ycsb-a/t4/b64", "merged dups");
        assert!(groups > 0.0, "batched run must install groups");
        assert!(
            entries / groups > 1.5,
            "groups must amortise several entries each ({entries}/{groups})"
        );
        assert!(merged > 0.0, "zipfian updates must merge duplicates");
        let b1_groups = cell_f64(&table, "ycsb-a/t4/b1", "groups");
        assert_eq!(b1_groups, 0.0, "batch=1 must use the per-op path");
    }

    /// Larger batches monotonically reduce the total number of partition
    /// group installs for the same op budget (coarse sanity on the
    /// insert-heavy mix, which rarely repeats keys).
    #[test]
    fn batching_reduces_group_installs_on_insert_heavy_mix() {
        let scale = Scale::quick();
        let keys = scale.record_count;
        let table = sweep_with(&scale, &[Workload::ycsb_d(keys)], &[2], &[8, 64]);
        let g8 = cell_f64(&table, "ycsb-d/t2/b8", "groups");
        let g64 = cell_f64(&table, "ycsb-d/t2/b64", "groups");
        assert!(
            g64 < g8,
            "64-entry batches must install fewer groups than 8-entry batches ({g64} vs {g8})"
        );
    }
}
