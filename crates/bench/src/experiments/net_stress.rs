//! Network serving layer stress driver: C concurrent connections, each
//! pipelining a window of W unacknowledged frames of a mixed
//! put/get/scan/delete stream through [`prism_net::NetServer`], with
//! per-request wall-clock round-trip latencies collected into a CDF
//! (p50/p99/p999) next to throughput and the server's wire counters.
//!
//! The sweep runs over the deterministic in-process duplex transport —
//! the same bytes, framing, server threads and front-end queues as TCP
//! without the kernel in the way — and adds one real-TCP loopback row
//! when the environment allows binding (skipped silently where it
//! doesn't, e.g. sandboxed CI runners).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use prism_db::PrismDb;
use prism_frontend::FrontendOptions;
use prism_net::client::NetClient;
use prism_net::protocol::{Request, Status};
use prism_net::server::{NetServer, ServerOptions};
use prism_net::transport::{duplex_listener, tcp_connect, Conn, TcpServerListener};
use prism_obs::LatencyHistogram;
use prism_types::{ConcurrentKvStore, Key, NetStats, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engines;
use crate::report::{fmt_f64, write_bench_json, SummaryEntry, Table};
use crate::runner::hist_percentile_us;
use crate::Scale;

/// Connection-count sweep.
pub const CONNECTION_SWEEP: [usize; 3] = [1, 4, 8];
/// Pipeline-window sweep (1 = strict request/response ping-pong).
pub const WINDOW_SWEEP: [usize; 2] = [1, 32];
/// Value payload size for stress writes.
const VALUE_BYTES: usize = 128;

/// What one stress run measured.
struct StressResult {
    throughput_kops: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    net: NetStats,
}

/// One mixed op drawn per loop iteration: half writes so group commit
/// sees pressure, scans kept rare because each returns many entries.
fn random_request(rng: &mut StdRng, keys: u64) -> Request {
    let key = Key::from_id(rng.gen_range(0u64..keys));
    match rng.gen_range(0u32..100) {
        0..=49 => Request::Put {
            key,
            value: Value::filled(VALUE_BYTES, 0x5A),
        },
        50..=89 => Request::Get { key },
        90..=94 => Request::Scan {
            start: key,
            count: 16,
        },
        _ => Request::Delete { key },
    }
}

/// Drive `ops` requests through one client with a `window`-deep pipeline,
/// recording the wall-clock round trip of each measured request into the
/// shared lock-free histogram (all client threads record into the same
/// one — the same concurrent-recording path the frontend's per-stage
/// timers use in production).
fn drive_client(
    mut client: NetClient,
    keys: u64,
    seed: u64,
    warmup_ops: u64,
    ops: u64,
    window: usize,
    hist: &LatencyHistogram,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut in_flight: VecDeque<(u64, Instant, bool)> = VecDeque::new();
    let reap = |client: &mut NetClient, in_flight: &mut VecDeque<(u64, Instant, bool)>| {
        let (id, sent_at, measured) = in_flight.pop_front().expect("non-empty window");
        let response = client.wait(id).expect("stress response");
        assert_eq!(
            response.status,
            Status::Ok,
            "stress op refused: {}",
            response.message
        );
        if measured {
            hist.record(sent_at.elapsed().as_nanos() as u64);
        }
    };
    for op in 0..warmup_ops + ops {
        let request = random_request(&mut rng, keys);
        let id = client.send(&request).expect("stress send");
        in_flight.push_back((id, Instant::now(), op >= warmup_ops));
        if in_flight.len() >= window {
            reap(&mut client, &mut in_flight);
        }
    }
    while !in_flight.is_empty() {
        reap(&mut client, &mut in_flight);
    }
}

/// A server plus a way for client threads to dial it.
type Serving = (NetServer<PrismDb>, Box<dyn Fn() -> Conn + Send + Sync>);

/// Load the key space, start a server via `serve`, run the stress
/// clients, and aggregate latencies and wire stats.
fn stress<S>(scale: &Scale, serve: S, connections: usize, window: usize) -> StressResult
where
    S: FnOnce(Arc<PrismDb>) -> Serving,
{
    let keys = scale.record_count;
    let db = engines::prismdb_shared(keys);
    for id in 0..keys {
        db.put(Key::from_id(id), Value::filled(VALUE_BYTES, id as u8))
            .expect("load put");
    }
    let (mut server, dial) = serve(Arc::clone(&db));

    let warmup_per_conn = scale.warmup_ops / connections as u64;
    let ops_per_conn = scale.measure_ops / connections as u64;
    let started = Instant::now();
    let hist = LatencyHistogram::new();
    std::thread::scope(|scope| {
        let dial = &dial;
        let hist = &hist;
        let handles: Vec<_> = (0..connections)
            .map(|conn_id| {
                scope.spawn(move || {
                    let client = NetClient::new(dial());
                    drive_client(
                        client,
                        keys,
                        42 + conn_id as u64,
                        warmup_per_conn,
                        ops_per_conn,
                        window,
                        hist,
                    );
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("stress client thread");
        }
    });
    let elapsed = started.elapsed();
    let net = server.stats();
    server.shutdown();

    let snap = hist.snapshot();
    let measured_ops = ops_per_conn * connections as u64;
    assert_eq!(
        snap.count(),
        measured_ops,
        "every measured round trip must land in the shared histogram"
    );
    StressResult {
        // Wall time includes the warm-up phase; scale it out by the op
        // ratio rather than timing mid-scope (all clients run both).
        throughput_kops: measured_ops as f64
            / (elapsed.as_secs_f64() * measured_ops as f64
                / (measured_ops + warmup_per_conn * connections as u64) as f64)
            / 1_000.0,
        p50_us: hist_percentile_us(&snap, 0.50),
        p99_us: hist_percentile_us(&snap, 0.99),
        p999_us: hist_percentile_us(&snap, 0.999),
        net,
    }
}

fn server_options() -> ServerOptions {
    ServerOptions {
        frontend: FrontendOptions {
            executors: 2,
            ..FrontendOptions::default()
        },
        // Above every window in WINDOW_SWEEP, so the wire (not the
        // server's flow control) sets the pipeline depth under test.
        max_in_flight_per_conn: 64,
    }
}

fn add_result_row(table: &mut Table, label: String, result: &StressResult) {
    table.add_row(vec![
        label,
        fmt_f64(result.throughput_kops),
        fmt_f64(result.p50_us),
        fmt_f64(result.p99_us),
        fmt_f64(result.p999_us),
        result.net.frames_received.to_string(),
        result.net.backpressure_rejections.to_string(),
        result.net.max_in_flight.to_string(),
    ]);
}

/// Run the duplex-transport sweep over `connections` × `windows`. Row
/// labels are `"duplex/c<connections>/w<window>"`.
pub fn sweep_with(scale: &Scale, connections: &[usize], windows: &[usize]) -> Table {
    let mut table = Table::new(
        "Network stress: C connections x W-deep pipelines, round-trip CDF",
        &[
            "config",
            "Kops/s",
            "p50 us",
            "p99 us",
            "p999 us",
            "frames",
            "backpressure",
            "max in-flight",
        ],
    );
    for &c in connections {
        for &w in windows {
            let result = stress(
                scale,
                |db| {
                    let (listener, connector) = duplex_listener();
                    let server = NetServer::start(db, Arc::new(listener), server_options())
                        .expect("valid server options");
                    (
                        server,
                        Box::new(move || connector.connect().expect("duplex dial")) as _,
                    )
                },
                c,
                w,
            );
            add_result_row(&mut table, format!("duplex/c{c}/w{w}"), &result);
        }
    }
    table.print();
    table
}

/// One real-TCP loopback row at the largest duplex configuration, if the
/// environment lets us bind; returns `None` (and prints why) otherwise.
pub fn tcp_row(scale: &Scale, connections: usize, window: usize) -> Option<StressRow> {
    let probe = match TcpServerListener::bind("127.0.0.1:0") {
        Ok(listener) => listener,
        Err(err) => {
            eprintln!("net_stress: skipping TCP row (cannot bind loopback: {err})");
            return None;
        }
    };
    drop(probe);
    let result = stress(
        scale,
        |db| {
            let listener = TcpServerListener::bind("127.0.0.1:0").expect("probe succeeded");
            let server = NetServer::start(db, Arc::new(listener), server_options())
                .expect("valid server options");
            let addr = server.local_addr();
            (
                server,
                Box::new(move || tcp_connect(&addr).expect("tcp dial")) as _,
            )
        },
        connections,
        window,
    );
    Some(StressRow {
        label: format!("tcp/c{connections}/w{window}"),
        result,
    })
}

/// A labelled stress result, for appending TCP rows onto the table.
pub struct StressRow {
    label: String,
    result: StressResult,
}

/// Run the full sweep and emit `BENCH_net.json` plus the sweep's
/// `BENCH_summary.json` entry.
pub fn run(scale: &Scale) -> Vec<Table> {
    let mut table = sweep_with(scale, &CONNECTION_SWEEP, &WINDOW_SWEEP);
    if let Some(row) = tcp_row(scale, 4, 32) {
        add_result_row(&mut table, row.label, &row.result);
        table.print();
    }
    write_bench_json("net", std::slice::from_ref(&table));
    if let Some(entry) = SummaryEntry::best_of("net", &table, "Kops/s", scale.record_count) {
        crate::report::update_bench_summary(&entry);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::percentile;

    /// Old-vs-new regression: the CDF cells in `BENCH_net.json` now come
    /// from the shared log-bucketed histogram; on a realistic skewed
    /// round-trip distribution they must agree with the retired
    /// sorted-vec math within one bucket's relative error (×√2), and the
    /// exact order statistic must lie inside the reported bucket.
    #[test]
    fn histogram_cdf_matches_sorted_oracle_within_one_bucket() {
        let mut rng = StdRng::seed_from_u64(7);
        let hist = LatencyHistogram::new();
        let mut sorted: Vec<u64> = (0..10_000)
            .map(|_| {
                // Log-uniform µs-to-ms round trips with a heavy tail,
                // like a pipelined wire under occasional back-pressure.
                let base = 10f64.powf(rng.gen_range(3.0..6.0)) as u64;
                if rng.gen_range(0u32..100) < 2 {
                    base * 20
                } else {
                    base
                }
            })
            .inspect(|&ns| hist.record(ns))
            .collect();
        sorted.sort_unstable();
        let snap = hist.snapshot();
        assert_eq!(snap.count(), sorted.len() as u64);
        for q in [0.50, 0.99, 0.999] {
            let oracle_us = percentile(&sorted, q);
            let new_us = hist_percentile_us(&snap, q);
            let (lo, hi) = snap.percentile_bounds(q);
            let oracle_ns = (oracle_us * 1_000.0).round() as u64;
            assert!(
                lo <= oracle_ns && oracle_ns <= hi,
                "q={q}: oracle {oracle_ns}ns outside bucket [{lo}, {hi}]"
            );
            assert!(
                new_us >= oracle_us / 1.45 && new_us <= oracle_us * 1.45,
                "q={q}: histogram {new_us}us vs oracle {oracle_us}us exceeds one-bucket error"
            );
        }
    }

    fn cell_f64(table: &Table, row: &str, col: &str) -> f64 {
        table
            .cell(row, col)
            .unwrap_or_else(|| panic!("missing cell {row}/{col}"))
            .parse()
            .unwrap()
    }

    /// The CI gate: a pipelined 4-connection duplex run must complete
    /// with positive throughput, a monotone latency CDF, and a p99 under
    /// a deliberately generous bound — it catches a serving layer that
    /// stalls (lock convoy, lost wakeup, responder livelock), not normal
    /// machine-to-machine variance.
    #[test]
    fn stress_over_duplex_meets_latency_gate() {
        let scale = Scale::quick();
        let table = sweep_with(&scale, &[4], &[32]);
        let kops = cell_f64(&table, "duplex/c4/w32", "Kops/s");
        let p50 = cell_f64(&table, "duplex/c4/w32", "p50 us");
        let p99 = cell_f64(&table, "duplex/c4/w32", "p99 us");
        let p999 = cell_f64(&table, "duplex/c4/w32", "p999 us");
        assert!(kops > 0.0, "stress run must make progress");
        assert!(p50 <= p99 && p99 <= p999, "CDF must be monotone");
        assert!(
            p99 < 50_000.0,
            "p99 {p99}us blew the 50ms stall gate (p50 {p50}us, p999 {p999}us)"
        );
        let frames = cell_f64(&table, "duplex/c4/w32", "frames");
        assert!(
            frames >= scale.measure_ops as f64,
            "every op must travel the wire (saw {frames} frames)"
        );
    }

    /// Ping-pong (window 1) must also hold the gate — it exercises the
    /// responder's idle/wake path on every single request.
    #[test]
    fn ping_pong_window_holds_the_gate() {
        let scale = Scale::quick();
        let table = sweep_with(&scale, &[1], &[1]);
        assert!(cell_f64(&table, "duplex/c1/w1", "Kops/s") > 0.0);
        assert!(cell_f64(&table, "duplex/c1/w1", "p99 us") < 50_000.0);
    }
}
