//! Ablation study: sensitivity of MSC compaction to its two tuning knobs —
//! the number of sampled candidate ranges (power-of-k choices, §5.3) and the
//! bucket width of the approx-MSC statistics (§6).
//!
//! This is not a figure in the paper; it backs the design choices the paper
//! states (k = 8, bucket = one SST file's worth of keys) by showing the
//! trade-off each knob controls: more candidates cost planning CPU but find
//! colder ranges; narrower buckets approximate the precise metric better at
//! higher memory/maintenance cost.

use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{Runner, Scale};

/// Sweep the candidate count and bucket width.
pub fn run(scale: &Scale) -> Vec<Table> {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;
    let workload = Workload::ycsb_a(keys).with_zipf(0.99);

    let mut by_k = Table::new(
        "Ablation: power-of-k candidate sampling (YCSB-A, Zipf 0.99)",
        &[
            "k",
            "throughput (Kops/s)",
            "flash write amplification",
            "avg compaction (ms)",
        ],
    );
    for k in [1usize, 2, 4, 8, 16] {
        let mut options = engines::prism_options(keys);
        options.compaction.k_candidates = k;
        let mut db = prism_db::PrismDb::open(options).expect("valid options");
        let cost = db.cost_per_gb();
        let result = runner.run(&mut db, &workload, cost);
        let compaction = result.stats.compaction;
        let avg_ms = if compaction.jobs == 0 {
            0.0
        } else {
            compaction.total_time.as_nanos() as f64 / compaction.jobs as f64 / 1e6
        };
        by_k.add_row(vec![
            k.to_string(),
            fmt_f64(result.throughput_kops),
            fmt_f64(result.stats.flash_write_amplification()),
            fmt_f64(avg_ms),
        ]);
    }
    by_k.print();

    let mut by_bucket = Table::new(
        "Ablation: approx-MSC bucket width (YCSB-A, Zipf 0.99)",
        &[
            "bucket (keys)",
            "throughput (Kops/s)",
            "flash write amplification",
        ],
    );
    for bucket in [256u64, 1_024, 4_096, 16_384] {
        let mut options = engines::prism_options(keys);
        options.compaction.bucket_size_keys = bucket;
        let mut db = prism_db::PrismDb::open(options).expect("valid options");
        let cost = db.cost_per_gb();
        let result = runner.run(&mut db, &workload, cost);
        by_bucket.add_row(vec![
            bucket.to_string(),
            fmt_f64(result.throughput_kops),
            fmt_f64(result.stats.flash_write_amplification()),
        ]);
    }
    by_bucket.print();

    vec![by_k, by_bucket]
}
