//! Driving an engine with a workload and collecting results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use prism_frontend::{Frontend, FrontendOptions, ReadTicket, ScanTicket, WriteTicket};
use prism_obs::{HistogramSnapshot, LatencyHistogram};
use prism_types::{
    ConcurrentKvStore, EngineStats, FrontendStats, Key, KvStore, Nanos, Op, OpKind, PrismError,
    Result, Value, WriteBatch,
};
use prism_workloads::{OpStream, Workload};

/// Sizing of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of keys loaded before the measured phase.
    pub record_count: u64,
    /// Warm-up operations (executed but not measured).
    pub warmup_ops: u64,
    /// Measured operations.
    pub measure_ops: u64,
    /// RNG seed for the operation stream.
    pub seed: u64,
    /// Number of measurement windows for time-series experiments
    /// (Figure 14b); 1 means a single aggregate window.
    pub windows: usize,
}

impl RunConfig {
    /// A configuration proportional to the key count: warm-up equal to the
    /// key count and twice as many measured operations.
    pub fn scaled(record_count: u64) -> Self {
        RunConfig {
            record_count,
            warmup_ops: record_count,
            measure_ops: record_count * 2,
            seed: 42,
            windows: 1,
        }
    }

    /// A small configuration for tests.
    pub fn quick(record_count: u64) -> Self {
        RunConfig {
            record_count,
            warmup_ops: record_count / 2,
            measure_ops: record_count,
            seed: 42,
            windows: 1,
        }
    }

    /// Use `windows` measurement windows (for time-series plots).
    pub fn with_windows(mut self, windows: usize) -> Self {
        self.windows = windows.max(1);
        self
    }
}

/// One measurement window of a run.
#[derive(Debug, Clone)]
pub struct Window {
    /// Throughput in thousands of operations per simulated second.
    pub throughput_kops: f64,
    /// Fraction of found reads served from DRAM or NVM during the window.
    pub fast_read_ratio: f64,
}

/// The outcome of driving one engine with one workload.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Engine name.
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// Overall throughput in thousands of operations per simulated second.
    pub throughput_kops: f64,
    /// Mean operation latency in microseconds.
    pub mean_us: f64,
    /// Median operation latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile operation latency in microseconds.
    pub p99_us: f64,
    /// Per-operation-kind latency percentiles (microseconds).
    pub per_kind: HashMap<OpKind, KindLatency>,
    /// Engine statistics accumulated during the measured window only.
    pub stats: EngineStats,
    /// Simulated time spent in the measured window.
    pub elapsed: Nanos,
    /// Blended storage cost of the engine's devices.
    pub cost_per_gb: f64,
    /// Per-window results (length = `RunConfig::windows`).
    pub windows: Vec<Window>,
    /// All measured operation latencies, sorted ascending, in microseconds.
    /// Kept as the exact sorted-vec oracle for the bucketed
    /// [`RunResult::latency_hist`] the reported percentiles come from.
    pub read_latencies_us: Vec<f64>,
    /// Shared log-bucketed histogram of every measured latency (ns); the
    /// source of `p50_us`/`p99_us` and the Figure 14a CDF, and the same
    /// [`prism_obs::LatencyHistogram`] type the frontend and engine
    /// record into at runtime.
    pub latency_hist: HistogramSnapshot,
}

/// Latency summary for one operation kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct KindLatency {
    /// Number of operations of this kind.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
}

/// Exact nearest-rank percentile of a sorted nanosecond slice, in µs.
///
/// This is the *oracle*: reported percentiles now come from the shared
/// [`prism_obs::LatencyHistogram`] (same nearest-rank definition,
/// log-bucketed), and the regression tests pin the bucketed estimate to
/// this exact value within one bucket's relative error.
#[cfg(test)]
pub(crate) fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64 / 1_000.0
}

/// Rank-`q` percentile of a histogram snapshot, in µs.
pub(crate) fn hist_percentile_us(snap: &HistogramSnapshot, q: f64) -> f64 {
    snap.percentile(q) / 1_000.0
}

/// Drives engines through load, warm-up and measurement phases.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    config: RunConfig,
}

impl Runner {
    /// Create a runner.
    pub fn new(config: RunConfig) -> Self {
        Runner { config }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    fn apply<E: KvStore + ?Sized>(engine: &mut E, op: &Op) -> Result<(Nanos, OpKind)> {
        let kind = op.kind();
        let latency = match op {
            Op::Read(key) => engine.get(key)?.latency,
            Op::Update(key, value) | Op::Insert(key, value) => {
                engine.put(key.clone(), value.clone())?
            }
            Op::ReadModifyWrite(key, value) => {
                let read = engine.get(key)?.latency;
                let write = engine.put(key.clone(), value.clone())?;
                read + write
            }
            Op::Scan(key, count) => engine.scan(key, *count)?.latency,
            Op::Delete(key) => engine.delete(key)?,
        };
        Ok((latency, kind))
    }

    /// Run the workload against `engine` and collect results.
    ///
    /// # Panics
    ///
    /// Panics if the engine returns an error (experiments are expected to be
    /// configured within capacity limits).
    pub fn run<E: KvStore + ?Sized>(
        &self,
        engine: &mut E,
        workload: &Workload,
        cost_per_gb: f64,
    ) -> RunResult {
        let spec = Workload {
            record_count: self.config.record_count,
            ..workload.clone()
        };
        let mut stream: OpStream = spec.stream(self.config.seed);

        // Load phase.
        for op in stream.load_ops() {
            Self::apply(engine, &op).expect("load phase must not fail");
        }
        // Warm-up phase.
        for _ in 0..self.config.warmup_ops {
            let op = stream.next().expect("stream is infinite");
            Self::apply(engine, &op).expect("warm-up must not fail");
        }

        // Measured phase, possibly split into windows. Every latency is
        // recorded twice: into the exact sorted-vec oracle (kept on the
        // result for CDF regression tests) and into the shared
        // log-bucketed histogram the reported percentiles come from.
        let mut latencies: Vec<u64> = Vec::with_capacity(self.config.measure_ops as usize);
        let hist = LatencyHistogram::new();
        let mut by_kind: HashMap<OpKind, LatencyHistogram> = HashMap::new();
        let mut windows = Vec::with_capacity(self.config.windows);
        let start_stats = engine.stats();
        let start_elapsed = engine.elapsed();
        let ops_per_window = (self.config.measure_ops / self.config.windows as u64).max(1);

        let mut window_stats = start_stats;
        let mut window_elapsed = start_elapsed;
        for w in 0..self.config.windows {
            for _ in 0..ops_per_window {
                let op = stream.next().expect("stream is infinite");
                let (latency, kind) = Self::apply(engine, &op).expect("measured ops must not fail");
                latencies.push(latency.as_nanos());
                hist.record(latency.as_nanos());
                by_kind.entry(kind).or_default().record(latency.as_nanos());
            }
            let now_stats = engine.stats();
            let now_elapsed = engine.elapsed();
            let delta = now_stats.delta_since(&window_stats);
            let took = now_elapsed.saturating_sub(window_elapsed);
            windows.push(Window {
                throughput_kops: if took.is_zero() {
                    0.0
                } else {
                    ops_per_window as f64 / took.as_secs_f64() / 1_000.0
                },
                fast_read_ratio: delta.fast_read_ratio(),
            });
            window_stats = now_stats;
            window_elapsed = now_elapsed;
            let _ = w;
        }

        let stats = engine.stats().delta_since(&start_stats);
        let elapsed = engine.elapsed().saturating_sub(start_elapsed);
        let measured_ops = ops_per_window * self.config.windows as u64;

        latencies.sort_unstable();
        let latency_hist = hist.snapshot();
        let per_kind = by_kind
            .into_iter()
            .map(|(kind, h)| {
                let snap = h.snapshot();
                (
                    kind,
                    KindLatency {
                        count: snap.count(),
                        mean_us: snap.mean() / 1_000.0,
                        p50_us: hist_percentile_us(&snap, 0.5),
                        p99_us: hist_percentile_us(&snap, 0.99),
                    },
                )
            })
            .collect();

        let read_latencies_us: Vec<f64> = latencies.iter().map(|ns| *ns as f64 / 1_000.0).collect();

        RunResult {
            engine: engine.engine_name().to_string(),
            workload: spec.name.clone(),
            throughput_kops: if elapsed.is_zero() {
                0.0
            } else {
                measured_ops as f64 / elapsed.as_secs_f64() / 1_000.0
            },
            mean_us: latency_hist.mean() / 1_000.0,
            p50_us: hist_percentile_us(&latency_hist, 0.5),
            p99_us: hist_percentile_us(&latency_hist, 0.99),
            per_kind,
            stats,
            elapsed,
            cost_per_gb,
            windows,
            read_latencies_us,
            latency_hist,
        }
    }
}

/// The outcome of driving one engine from several client threads.
///
/// Produced by [`Runner::run_threaded`]. Throughput is computed in the
/// same simulated-time domain as the single-threaded results, but under a
/// closed-loop multi-client model (see `run_threaded`), so it reflects how
/// the engine's internal sharding converts added client threads into
/// parallelism — independent of how many physical cores the host happens
/// to have (individual latencies still vary slightly run-to-run because
/// thread interleaving affects shared engine state such as cache contents
/// and compaction timing).
#[derive(Debug, Clone)]
pub struct ThreadedRunResult {
    /// Engine name.
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// Number of client threads.
    pub threads: usize,
    /// Client write-batch size (1 = per-op submission).
    pub batch_size: usize,
    /// Total operations measured across all threads.
    pub measured_ops: u64,
    /// Aggregate throughput in thousands of operations per simulated
    /// second (total ops divided by [`ThreadedRunResult::elapsed`]).
    pub throughput_kops: f64,
    /// Simulated makespan of the measured phase:
    /// `max(busiest client clock, busiest shard's serial work, busiest
    /// background compaction worker)`. For engines whose reads overlap on
    /// a shard ([`ConcurrentKvStore::concurrent_reads`]), only write-class
    /// operations count towards a shard's serial work — plus the engine's
    /// own reported serial read residue
    /// ([`ConcurrentKvStore::shard_read_serial_times`]): the slice of each
    /// read that still serialises inside the shard (e.g. one DRAM-cache
    /// sub-shard mutex), which shrinks as the engine shards its cache.
    pub elapsed: Nanos,
    /// The makespan under the old serialise-everything shard model (every
    /// operation, reads included, charged to its shard). Comparing this to
    /// [`ThreadedRunResult::elapsed`] isolates the win from reader-writer
    /// partition locks on read-heavy mixes; for engines without concurrent
    /// reads the two are identical.
    pub elapsed_serial_reads: Nanos,
    /// Simulated time consumed by the busiest virtual background
    /// compaction worker during the measured phase (zero for inline
    /// engines).
    pub background_time: Nanos,
    /// Real wall-clock time of the measured phase (informational; on a
    /// single-core host this mostly reflects lock overhead, not scaling).
    pub wall: std::time::Duration,
    /// Engine statistics accumulated during the measured phase.
    pub stats: EngineStats,
}

impl Runner {
    fn apply_shared<E: ConcurrentKvStore + ?Sized>(engine: &E, op: &Op) -> Result<Nanos> {
        Ok(match op {
            Op::Read(key) => engine.get(key)?.latency,
            Op::Update(key, value) | Op::Insert(key, value) => {
                engine.put(key.clone(), value.clone())?
            }
            Op::ReadModifyWrite(key, value) => {
                let read = engine.get(key)?.latency;
                let write = engine.put(key.clone(), value.clone())?;
                read + write
            }
            Op::Scan(key, count) => engine.scan(key, *count)?.latency,
            Op::Delete(key) => engine.delete(key)?,
        })
    }

    /// A per-thread RNG seed: deterministic, well-spread, and disjoint from
    /// the single-threaded stream seeded with `seed` itself.
    fn thread_seed(seed: u64, thread: usize, phase: u64) -> u64 {
        seed ^ (0x517c_c1b7_2722_0a95u64
            .wrapping_mul(thread as u64 + 1)
            .wrapping_add(phase.wrapping_mul(0x2545_f491_4f6c_dd1d)))
    }

    /// Drive `engine` from `threads` OS threads, each with its own
    /// operation stream, and measure aggregate throughput.
    ///
    /// The engine really is driven concurrently — every thread calls
    /// [`ConcurrentKvStore`] methods on the shared reference, so lock
    /// contention, routing and cross-partition scans are all exercised for
    /// real. Throughput, however, is accounted in *simulated* time with a
    /// closed-loop client model, mirroring how the rest of the harness
    /// works (and keeping results independent of host core count):
    ///
    /// * each client thread sums the simulated latency of its own
    ///   operations (a closed-loop client issues the next operation when
    ///   the previous one completes);
    /// * each engine shard (see [`ConcurrentKvStore::shard_of`]) sums the
    ///   simulated latency of every operation routed to it that needs
    ///   exclusive access — operations serialising on a shard's lock are
    ///   time that cannot be overlapped no matter how many clients there
    ///   are. For engines whose reads overlap on a shard
    ///   ([`ConcurrentKvStore::concurrent_reads`]), point reads and scans
    ///   are excluded from this serial tally (the serialise-everything
    ///   tally is still reported as
    ///   [`ThreadedRunResult::elapsed_serial_reads`]). Scans are charged
    ///   to every shard in [`ConcurrentKvStore::shards_for_scan`] — the
    ///   shards whose locks a cross-partition scan may hold simultaneously
    ///   (a conservative superset);
    /// * each virtual background compaction worker
    ///   ([`ConcurrentKvStore::background_worker_times`]) accumulates the
    ///   compaction work assigned to it, so with `W` workers the busiest
    ///   worker bounds the makespan by roughly `total compaction / W`.
    ///
    /// The simulated makespan is the classic schedule lower bound
    /// `max(busiest client, busiest shard, busiest background worker)`,
    /// and aggregate throughput is `total ops / makespan`. Adding client
    /// threads divides per-client work but leaves per-shard work
    /// unchanged, so throughput grows until the busiest shard dominates: a
    /// well-sharded engine scales to about its shard count, while a
    /// coarse-locked engine (one shard, whose work equals the whole run)
    /// cannot scale at all — exactly like its real counterpart on
    /// sufficient cores.
    ///
    /// # Panics
    ///
    /// Panics if the engine returns an error or `threads` is zero
    /// (experiments are expected to be configured within capacity limits).
    pub fn run_threaded<E: ConcurrentKvStore>(
        &self,
        engine: &E,
        workload: &Workload,
        threads: usize,
    ) -> ThreadedRunResult {
        self.run_threaded_batched(engine, workload, threads, 1)
    }

    /// [`Runner::run_threaded`] with client-side write batching: each
    /// client buffers write-class operations (updates, inserts, deletes,
    /// the write half of RMWs) into a [`WriteBatch`] and submits it via
    /// [`ConcurrentKvStore::apply_batch`] once `batch_size` entries have
    /// accumulated (reads and scans are issued immediately). With
    /// `batch_size <= 1` this is exactly the per-op model.
    ///
    /// Semantics: batched writes are *write-behind* — a read issued while
    /// writes are still buffered does not see them. YCSB's write-class
    /// operations are blind, so the measured mixes are unaffected, but
    /// recency-skewed reads (YCSB-D) may miss freshly inserted keys; the
    /// correctness of `apply_batch` itself is pinned by the differential
    /// and property-test suites, which chunk op streams with
    /// read-your-writes flushes.
    ///
    /// Accounting: a batch's simulated latency is charged once to the
    /// submitting client's closed-loop clock, and to the shards it
    /// touched proportionally to each shard's share of the batch entries
    /// (the engine applies one serial group per shard; the proportional
    /// split attributes the group-commit amortisation to the shards that
    /// earned it). Batched writes always count as exclusive shard work.
    ///
    /// # Panics
    ///
    /// Panics if the engine returns an error or `threads` is zero.
    pub fn run_threaded_batched<E: ConcurrentKvStore>(
        &self,
        engine: &E,
        workload: &Workload,
        threads: usize,
        batch_size: usize,
    ) -> ThreadedRunResult {
        assert!(threads > 0, "at least one client thread is required");
        let batch_size = batch_size.max(1);
        let spec = Workload {
            record_count: self.config.record_count,
            ..workload.clone()
        };

        // Load phase: sequential inserts, one thread.
        let load_stream = spec.stream(self.config.seed);
        for op in load_stream.load_ops() {
            Self::apply_shared(engine, &op).expect("load phase must not fail");
        }

        // Warm-up phase: all threads, no accounting.
        let warmup_per_thread = self.config.warmup_ops / threads as u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let spec = &spec;
                let seed = Self::thread_seed(self.config.seed, t, 1);
                scope.spawn(move || {
                    let mut stream = spec.stream(seed);
                    for _ in 0..warmup_per_thread {
                        let op = stream.next().expect("stream is infinite");
                        Self::apply_shared(engine, &op).expect("warm-up must not fail");
                    }
                });
            }
        });

        // Measured phase. Two shard-work tallies are kept: `shard_all`
        // charges every operation to its shard (the serialise-everything
        // model), `shard_excl` charges only operations that need exclusive
        // access. Engines with reader-writer shard locks are bounded by
        // the latter; mutex-per-shard engines by the former.
        let ops_per_thread = (self.config.measure_ops / threads as u64).max(1);
        let shard_count = engine.shard_count().max(1);
        let shard_all: Vec<AtomicU64> = (0..shard_count).map(|_| AtomicU64::new(0)).collect();
        let shard_excl: Vec<AtomicU64> = (0..shard_count).map(|_| AtomicU64::new(0)).collect();
        let concurrent_reads = engine.concurrent_reads();
        let bg_start = engine.background_worker_times();
        let read_serial_start = engine.shard_read_serial_times();
        let start_stats = engine.stats();
        let started = std::time::Instant::now();
        let mut client_clocks: Vec<Nanos> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let spec = &spec;
                let shard_all = &shard_all;
                let shard_excl = &shard_excl;
                let seed = Self::thread_seed(self.config.seed, t, 2);
                handles.push(scope.spawn(move || {
                    let mut stream = spec.stream(seed);
                    let mut clock = 0u64;
                    // Pending client-side write batch and the shard of
                    // each buffered entry (parallel to the batch).
                    let mut batch = WriteBatch::with_capacity(batch_size);
                    let mut batch_shard_ops: Vec<u64> = vec![0; shard_count];
                    let flush = |batch: &mut WriteBatch,
                                 batch_shard_ops: &mut Vec<u64>,
                                 clock: &mut u64| {
                        if batch.is_empty() {
                            return;
                        }
                        let entries = batch.len() as u64;
                        let latency = engine
                            .apply_batch(std::mem::take(batch))
                            .expect("batched writes must not fail")
                            .as_nanos();
                        *clock += latency;
                        // Charge each shard its proportional share of
                        // the batch's serial work; writes are always
                        // exclusive.
                        for (s, count) in batch_shard_ops.iter_mut().enumerate() {
                            if *count == 0 {
                                continue;
                            }
                            let share = latency * *count / entries;
                            shard_all[s].fetch_add(share, Ordering::Relaxed);
                            shard_excl[s].fetch_add(share, Ordering::Relaxed);
                            *count = 0;
                        }
                    };
                    for _ in 0..ops_per_thread {
                        let op = stream.next().expect("stream is infinite");
                        let shard = engine.shard_of(op.key());
                        if batch_size > 1 {
                            // Buffer write-class work; RMW reads fall
                            // through to the immediate path below.
                            let buffered = match &op {
                                Op::Update(key, value) | Op::Insert(key, value) => {
                                    batch.put(key.clone(), value.clone());
                                    true
                                }
                                Op::Delete(key) => {
                                    batch.delete(key.clone());
                                    true
                                }
                                Op::ReadModifyWrite(key, value) => {
                                    let read = engine
                                        .get(key)
                                        .expect("rmw read must not fail")
                                        .latency
                                        .as_nanos();
                                    clock += read;
                                    shard_all[shard].fetch_add(read, Ordering::Relaxed);
                                    if !concurrent_reads {
                                        shard_excl[shard].fetch_add(read, Ordering::Relaxed);
                                    }
                                    batch.put(key.clone(), value.clone());
                                    true
                                }
                                Op::Read(_) | Op::Scan(_, _) => false,
                            };
                            if buffered {
                                batch_shard_ops[shard] += 1;
                                if batch.len() >= batch_size {
                                    flush(&mut batch, &mut batch_shard_ops, &mut clock);
                                }
                                continue;
                            }
                        }
                        let is_scan = matches!(op, Op::Scan(_, _));
                        let is_read = matches!(op, Op::Read(_));
                        let latency = Self::apply_shared(engine, &op)
                            .expect("measured ops must not fail")
                            .as_nanos();
                        clock += latency;
                        // Reads and scans only hold shard read locks on a
                        // concurrent-reads engine: they overlap with each
                        // other, so they do not add to serial shard work.
                        let exclusive = !(concurrent_reads && (is_read || is_scan));
                        if is_scan {
                            // A cross-partition scan holds several shard
                            // locks at once; its time cannot be overlapped
                            // with work on any shard it may lock.
                            for s in engine.shards_for_scan(op.key()) {
                                shard_all[s].fetch_add(latency, Ordering::Relaxed);
                                if exclusive {
                                    shard_excl[s].fetch_add(latency, Ordering::Relaxed);
                                }
                            }
                        } else {
                            shard_all[shard].fetch_add(latency, Ordering::Relaxed);
                            if exclusive {
                                shard_excl[shard].fetch_add(latency, Ordering::Relaxed);
                            }
                        }
                    }
                    flush(&mut batch, &mut batch_shard_ops, &mut clock);
                    Nanos::from_nanos(clock)
                }));
            }
            for handle in handles {
                client_clocks.push(handle.join().expect("client thread panicked"));
            }
        });
        let wall = started.elapsed();

        // Makespan lower bound: no schedule can finish before the busiest
        // closed-loop client, the busiest (serial) shard, or the busiest
        // virtual background compaction worker.
        let busiest = |work: &[AtomicU64]| {
            work.iter()
                .map(|w| Nanos::from_nanos(w.load(Ordering::Relaxed)))
                .fold(Nanos::ZERO, Nanos::max)
        };
        let busiest_client = client_clocks.iter().copied().fold(Nanos::ZERO, Nanos::max);
        let bg_end = engine.background_worker_times();
        let background_time = bg_end
            .iter()
            .enumerate()
            .map(|(i, end)| end.saturating_sub(bg_start.get(i).copied().unwrap_or(Nanos::ZERO)))
            .fold(Nanos::ZERO, Nanos::max);
        let floor = busiest_client.max(background_time);
        // Concurrent-reads engines exclude reads from serial shard work,
        // but a slice of every read still serialises inside the shard
        // (the engine reports it per shard); add each shard's measured
        // residue before taking the max, so a coarse internal cache
        // (one sub-shard) correctly caps read scaling while a sharded
        // one frees it. The residue is a subset of read latency already
        // charged to `shard_all`, so the serialise-everything tally is
        // left untouched.
        let read_serial_end = if concurrent_reads {
            engine.shard_read_serial_times()
        } else {
            Vec::new()
        };
        let busiest_excl = shard_excl
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let residue = read_serial_end
                    .get(i)
                    .copied()
                    .unwrap_or(Nanos::ZERO)
                    .saturating_sub(read_serial_start.get(i).copied().unwrap_or(Nanos::ZERO));
                Nanos::from_nanos(w.load(Ordering::Relaxed)) + residue
            })
            .fold(Nanos::ZERO, Nanos::max);
        let elapsed = floor.max(busiest_excl);
        let elapsed_serial_reads = floor.max(busiest(&shard_all));
        let measured_ops = ops_per_thread * threads as u64;
        ThreadedRunResult {
            engine: engine.engine_name().to_string(),
            workload: spec.name.clone(),
            threads,
            batch_size,
            measured_ops,
            throughput_kops: if elapsed.is_zero() {
                0.0
            } else {
                measured_ops as f64 / elapsed.as_secs_f64() / 1_000.0
            },
            elapsed,
            elapsed_serial_reads,
            background_time,
            wall,
            stats: engine.stats().delta_since(&start_stats),
        }
    }
}

/// The outcome of driving one engine through the async submission
/// front-end with many multiplexed logical clients.
///
/// Produced by [`Runner::run_async_frontend`]. Unlike the
/// thread-per-client model there is no per-client clock: logical clients
/// spend most of their life waiting in queues by design, so the makespan
/// is bounded by whoever actually does the work — the busiest executor
/// thread, the busiest engine shard, or the busiest background
/// compaction worker.
#[derive(Debug, Clone)]
pub struct AsyncRunResult {
    /// Engine name.
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// Number of multiplexed logical clients (each keeps one op in
    /// flight).
    pub logical_clients: usize,
    /// Number of front-end executor threads.
    pub executors: usize,
    /// Total operations measured across all logical clients.
    pub measured_ops: u64,
    /// Aggregate throughput in thousands of operations per simulated
    /// second (total ops divided by [`AsyncRunResult::elapsed`]).
    pub throughput_kops: f64,
    /// Simulated makespan of the measured phase:
    /// `max(busiest executor, busiest shard's serial work, busiest
    /// background compaction worker)`.
    pub elapsed: Nanos,
    /// Simulated time consumed by the busiest executor thread.
    pub busiest_executor: Nanos,
    /// Serial work of the busiest engine shard (front-end-charged).
    pub busiest_shard: Nanos,
    /// Simulated time of the busiest virtual background compaction
    /// worker during the measured phase (zero for inline engines).
    pub background_time: Nanos,
    /// Real wall-clock time of the measured phase (informational).
    pub wall: std::time::Duration,
    /// Engine statistics accumulated during the measured phase.
    pub stats: EngineStats,
    /// Front-end statistics accumulated during the measured phase
    /// (coalesce width, queue depths, back-pressure rejections).
    pub frontend: FrontendStats,
}

/// One logical client's in-flight request, polled by the driver thread.
enum InFlight {
    Idle,
    /// Rejected with back-pressure: retry this op on the next pass.
    Retry(Op),
    Write(WriteTicket),
    Read(ReadTicket),
    Scan(ScanTicket),
    /// The read half of an RMW finished next submits the write half.
    RmwRead(ReadTicket, Key, Value),
    RmwWrite(WriteTicket),
}

impl Runner {
    /// Drive `engine` through a [`Frontend`] with `logical_clients`
    /// closed-loop clients multiplexed on **one** submitter OS thread,
    /// serviced by `executors` executor threads.
    ///
    /// Each logical client keeps exactly one operation in flight: the
    /// driver round-robins over the clients, submitting via the
    /// non-blocking `try_submit` path (a back-pressure rejection parks
    /// the op until the next pass — exactly how an async server sheds
    /// load) and polling tickets without blocking. Because hundreds of
    /// clients share a few executors, writes pile up in the partition
    /// queues between drains and the front-end coalesces them into
    /// group commits — the client-visible effect this experiment
    /// measures.
    ///
    /// The simulated makespan is `max(busiest executor, busiest shard,
    /// busiest background worker)`: executor clocks accumulate the
    /// simulated time of the groups they install and the reads they
    /// answer, shard clocks accumulate each shard's serial (write) work,
    /// and background workers are unchanged from
    /// [`Runner::run_threaded`]. There is no busiest-client term — the
    /// whole point of the front-end is that client scheduling stops
    /// being the bottleneck.
    ///
    /// # Panics
    ///
    /// Panics if the engine returns an operation error, or if
    /// `logical_clients` or `executors` is zero.
    pub fn run_async_frontend<E: ConcurrentKvStore + 'static>(
        &self,
        engine: Arc<E>,
        workload: &Workload,
        logical_clients: usize,
        executors: usize,
    ) -> AsyncRunResult {
        assert!(logical_clients > 0, "at least one logical client");
        assert!(executors > 0, "at least one executor");
        let spec = Workload {
            record_count: self.config.record_count,
            ..workload.clone()
        };

        // Load phase: sequential inserts directly on the engine.
        for op in spec.stream(self.config.seed).load_ops() {
            Self::apply_shared(&engine, &op).expect("load phase must not fail");
        }

        let frontend = Frontend::start(
            Arc::clone(&engine),
            FrontendOptions {
                executors,
                // Queues must be able to hold the whole client population
                // of a partition, or closed-loop clients would serialise
                // on back-pressure instead of multiplexing.
                queue_capacity: logical_clients.max(64),
                ..FrontendOptions::default()
            },
        )
        .expect("valid frontend options");

        // Warm-up phase: same multiplexed model, not measured.
        let warmup_per_client = (self.config.warmup_ops / logical_clients as u64).max(1);
        Self::drive_clients(
            &frontend,
            &spec,
            self.config.seed,
            1,
            logical_clients,
            warmup_per_client,
        );

        // Phase boundary: the high-water gauge is cumulative, and the
        // measured row must not inherit warm-up queue spikes.
        frontend.reset_max_queue_depth();
        let frontend_start = frontend.stats();
        let exec_start = frontend.executor_times();
        let shard_start = frontend.shard_serial_times();
        let bg_start = engine.background_worker_times();
        let start_stats = engine.stats();
        let started = std::time::Instant::now();

        let ops_per_client = (self.config.measure_ops / logical_clients as u64).max(1);
        Self::drive_clients(
            &frontend,
            &spec,
            self.config.seed,
            2,
            logical_clients,
            ops_per_client,
        );
        let wall = started.elapsed();

        let busiest_delta = |now: &[Nanos], then: &[Nanos]| {
            now.iter()
                .enumerate()
                .map(|(i, t)| t.saturating_sub(then.get(i).copied().unwrap_or(Nanos::ZERO)))
                .fold(Nanos::ZERO, Nanos::max)
        };
        let busiest_executor = busiest_delta(&frontend.executor_times(), &exec_start);
        let busiest_shard = busiest_delta(&frontend.shard_serial_times(), &shard_start);
        let background_time = busiest_delta(&engine.background_worker_times(), &bg_start);
        let elapsed = busiest_executor.max(busiest_shard).max(background_time);
        let measured_ops = ops_per_client * logical_clients as u64;
        AsyncRunResult {
            engine: engine.engine_name().to_string(),
            workload: spec.name.clone(),
            logical_clients,
            executors,
            measured_ops,
            throughput_kops: if elapsed.is_zero() {
                0.0
            } else {
                measured_ops as f64 / elapsed.as_secs_f64() / 1_000.0
            },
            elapsed,
            busiest_executor,
            busiest_shard,
            background_time,
            wall,
            stats: engine.stats().delta_since(&start_stats),
            frontend: frontend.stats().delta_since(frontend_start),
        }
    }

    /// Submit one op for a logical client, preferring the non-blocking
    /// `try_submit` path; a back-pressure rejection parks the op as
    /// [`InFlight::Retry`]. Scans and the (rare) op kinds without a `try`
    /// variant use the blocking path — with queues sized to the client
    /// population they do not actually block.
    fn submit_async<E: ConcurrentKvStore + 'static>(frontend: &Frontend<E>, op: Op) -> InFlight {
        let backpressured = |err: &PrismError| matches!(err, PrismError::Backpressure { .. });
        match op {
            Op::Read(ref key) => match frontend.try_submit_get(key) {
                Ok(ticket) => InFlight::Read(ticket),
                Err(ref err) if backpressured(err) => InFlight::Retry(op),
                Err(err) => panic!("async submit must not fail: {err}"),
            },
            Op::Update(ref key, ref value) | Op::Insert(ref key, ref value) => {
                match frontend.try_submit_put(key, value) {
                    Ok(ticket) => InFlight::Write(ticket),
                    Err(ref err) if backpressured(err) => InFlight::Retry(op),
                    Err(err) => panic!("async submit must not fail: {err}"),
                }
            }
            Op::Delete(ref key) => match frontend.try_submit_delete(key) {
                Ok(ticket) => InFlight::Write(ticket),
                Err(ref err) if backpressured(err) => InFlight::Retry(op),
                Err(err) => panic!("async submit must not fail: {err}"),
            },
            Op::ReadModifyWrite(ref key, ref value) => match frontend.try_submit_get(key) {
                Ok(ticket) => InFlight::RmwRead(ticket, key.clone(), value.clone()),
                Err(ref err) if backpressured(err) => InFlight::Retry(op),
                Err(err) => panic!("async submit must not fail: {err}"),
            },
            Op::Scan(ref key, count) => InFlight::Scan(
                frontend
                    .submit_scan(key, count)
                    .expect("async scan submit must not fail"),
            ),
        }
    }

    /// Round-robin `clients` logical clients to completion on the calling
    /// OS thread: submit via `try_submit` (back-pressured ops retry on the
    /// next pass), poll tickets non-blocking, issue `ops_per_client`
    /// operations each.
    fn drive_clients<E: ConcurrentKvStore + 'static>(
        frontend: &Frontend<E>,
        spec: &Workload,
        seed: u64,
        phase: u64,
        clients: usize,
        ops_per_client: u64,
    ) {
        let mut streams: Vec<OpStream> = (0..clients)
            .map(|c| spec.stream(Self::thread_seed(seed, c, phase)))
            .collect();
        let mut in_flight: Vec<InFlight> = (0..clients).map(|_| InFlight::Idle).collect();
        // Ops still to *complete* per client (an op counts when its final
        // ticket resolves, so the RMW write half belongs to the same op).
        let mut remaining: Vec<u64> = vec![ops_per_client; clients];
        let mut open = clients;
        while open > 0 {
            let mut progressed = false;
            for c in 0..clients {
                if remaining[c] == 0 {
                    continue;
                }
                // One op of this client just completed: count it and, if
                // the client still has budget, issue its next op.
                let completed_one =
                    |remaining: &mut Vec<u64>, open: &mut usize, streams: &mut Vec<OpStream>| {
                        remaining[c] -= 1;
                        if remaining[c] == 0 {
                            *open -= 1;
                            return InFlight::Idle;
                        }
                        let op = streams[c].next().expect("stream is infinite");
                        Self::submit_async(frontend, op)
                    };
                let (next, did) = match std::mem::replace(&mut in_flight[c], InFlight::Idle) {
                    InFlight::Idle => {
                        let op = streams[c].next().expect("stream is infinite");
                        let next = Self::submit_async(frontend, op);
                        let accepted = !matches!(next, InFlight::Retry(_));
                        (next, accepted)
                    }
                    InFlight::Retry(op) => {
                        let next = Self::submit_async(frontend, op);
                        let accepted = !matches!(next, InFlight::Retry(_));
                        (next, accepted)
                    }
                    InFlight::Write(mut ticket) => match ticket.poll() {
                        Some(result) => {
                            result.expect("async write must not fail");
                            (completed_one(&mut remaining, &mut open, &mut streams), true)
                        }
                        None => (InFlight::Write(ticket), false),
                    },
                    InFlight::RmwWrite(mut ticket) => match ticket.poll() {
                        Some(result) => {
                            result.expect("async rmw write must not fail");
                            (completed_one(&mut remaining, &mut open, &mut streams), true)
                        }
                        None => (InFlight::RmwWrite(ticket), false),
                    },
                    InFlight::Read(mut ticket) => match ticket.poll() {
                        Some(result) => {
                            result.expect("async read must not fail");
                            (completed_one(&mut remaining, &mut open, &mut streams), true)
                        }
                        None => (InFlight::Read(ticket), false),
                    },
                    InFlight::Scan(mut ticket) => match ticket.poll() {
                        Some(result) => {
                            result.expect("async scan must not fail");
                            (completed_one(&mut remaining, &mut open, &mut streams), true)
                        }
                        None => (InFlight::Scan(ticket), false),
                    },
                    InFlight::RmwRead(mut ticket, key, value) => match ticket.poll() {
                        Some(result) => {
                            result.expect("async rmw read must not fail");
                            // The write half; back-pressure re-parks it as
                            // a plain update (the read half already ran).
                            match frontend.try_submit_put(&key, &value) {
                                Ok(write) => (InFlight::RmwWrite(write), true),
                                Err(PrismError::Backpressure { .. }) => {
                                    (InFlight::Retry(Op::Update(key, value)), true)
                                }
                                Err(err) => panic!("async submit must not fail: {err}"),
                            }
                        }
                        None => (InFlight::RmwRead(ticket, key, value), false),
                    },
                };
                in_flight[c] = next;
                progressed |= did;
            }
            if !progressed {
                // Every client is waiting on an executor: give the
                // executor threads the core.
                std::thread::yield_now();
            }
        }
    }
}

impl RunResult {
    /// Latency summary for one operation kind (zeroes if that kind never
    /// ran).
    pub fn kind(&self, kind: OpKind) -> KindLatency {
        self.per_kind.get(&kind).copied().unwrap_or_default()
    }

    /// Fraction of found reads served without touching flash.
    pub fn fast_read_ratio(&self) -> f64 {
        self.stats.fast_read_ratio()
    }

    /// A percentile (0.0–1.0) of the measured per-operation latencies, in
    /// microseconds, read from the shared log-bucketed histogram (the
    /// estimate is within one bucket — ×√2 — of the exact order
    /// statistic; see [`RunResult::latency_hist`]).
    pub fn latency_percentile_us(&self, p: f64) -> f64 {
        hist_percentile_us(&self.latency_hist, p.clamp(0.0, 1.0))
    }

    /// The exact sorted-vec percentile in µs, kept as the oracle the
    /// histogram-backed [`RunResult::latency_percentile_us`] is
    /// regression-tested against.
    pub fn oracle_percentile_us(&self, p: f64) -> f64 {
        if self.read_latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((self.read_latencies_us.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        self.read_latencies_us[idx.min(self.read_latencies_us.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines;
    use prism_workloads::Workload;

    #[test]
    fn percentiles_are_monotone() {
        let sorted = vec![100, 200, 300, 400, 1_000_000];
        assert!(percentile(&sorted, 0.5) <= percentile(&sorted, 0.99));
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    /// Old-vs-new regression: the reported (histogram-bucketed)
    /// percentiles must agree with the sorted-vec oracle within one
    /// bucket's relative error — the oracle value lies inside the
    /// reported bucket's bounds, and the midpoint estimate is within ×√2.
    #[test]
    fn histogram_percentiles_match_sorted_oracle_within_one_bucket() {
        let runner = Runner::new(RunConfig::quick(1_500));
        let mut db = engines::prismdb(1_500);
        let cost = db.cost_per_gb();
        let result = runner.run(&mut db, &Workload::ycsb_b(1_500), cost);
        assert_eq!(
            result.latency_hist.count() as usize,
            result.read_latencies_us.len(),
            "every measured op must be in the histogram"
        );
        for q in [0.10, 0.50, 0.90, 0.99, 0.999] {
            let oracle_us = result.oracle_percentile_us(q);
            let reported_us = result.latency_percentile_us(q);
            let (lo, hi) = result.latency_hist.percentile_bounds(q);
            let oracle_ns = (oracle_us * 1_000.0).round() as u64;
            assert!(
                lo <= oracle_ns && oracle_ns <= hi,
                "q={q}: oracle {oracle_ns}ns outside reported bucket [{lo}, {hi}]"
            );
            assert!(
                reported_us >= oracle_us / 1.45 && reported_us <= oracle_us * 1.45,
                "q={q}: reported {reported_us}us vs oracle {oracle_us}us exceeds one-bucket error"
            );
        }
        // The overall p50/p99 fields come from the same histogram.
        assert_eq!(result.p50_us, result.latency_percentile_us(0.50));
        assert_eq!(result.p99_us, result.latency_percentile_us(0.99));
    }

    #[test]
    fn threaded_run_measures_aggregate_throughput() {
        let runner = Runner::new(RunConfig::quick(1_000));
        let db = engines::prismdb(1_000);
        let result = runner.run_threaded(&db, &Workload::ycsb_c(1_000), 2);
        assert_eq!(result.threads, 2);
        assert!(result.measured_ops >= 1_000);
        assert!(result.throughput_kops > 0.0);
        assert!(result.elapsed > prism_types::Nanos::ZERO);
        assert!(result.stats.reads_found() > 0);
        assert_eq!(result.engine, "prismdb");
    }

    #[test]
    fn windows_split_the_measurement() {
        let config = RunConfig::quick(800).with_windows(4);
        let runner = Runner::new(config);
        let mut db = engines::prismdb(800);
        let cost = db.cost_per_gb();
        let result = runner.run(&mut db, &Workload::ycsb_b(800), cost);
        assert_eq!(result.windows.len(), 4);
        assert!(result.windows.iter().all(|w| w.throughput_kops >= 0.0));
        assert!(result.kind(prism_types::OpKind::Read).count > 0);
        assert!(result.latency_percentile_us(0.9) >= result.latency_percentile_us(0.1));
    }
}
