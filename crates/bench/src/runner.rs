//! Driving an engine with a workload and collecting results.

use std::collections::HashMap;

use prism_types::{EngineStats, KvStore, Nanos, Op, OpKind, Result};
use prism_workloads::{OpStream, Workload};

/// Sizing of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of keys loaded before the measured phase.
    pub record_count: u64,
    /// Warm-up operations (executed but not measured).
    pub warmup_ops: u64,
    /// Measured operations.
    pub measure_ops: u64,
    /// RNG seed for the operation stream.
    pub seed: u64,
    /// Number of measurement windows for time-series experiments
    /// (Figure 14b); 1 means a single aggregate window.
    pub windows: usize,
}

impl RunConfig {
    /// A configuration proportional to the key count: warm-up equal to the
    /// key count and twice as many measured operations.
    pub fn scaled(record_count: u64) -> Self {
        RunConfig {
            record_count,
            warmup_ops: record_count,
            measure_ops: record_count * 2,
            seed: 42,
            windows: 1,
        }
    }

    /// A small configuration for tests.
    pub fn quick(record_count: u64) -> Self {
        RunConfig {
            record_count,
            warmup_ops: record_count / 2,
            measure_ops: record_count,
            seed: 42,
            windows: 1,
        }
    }

    /// Use `windows` measurement windows (for time-series plots).
    pub fn with_windows(mut self, windows: usize) -> Self {
        self.windows = windows.max(1);
        self
    }
}

/// One measurement window of a run.
#[derive(Debug, Clone)]
pub struct Window {
    /// Throughput in thousands of operations per simulated second.
    pub throughput_kops: f64,
    /// Fraction of found reads served from DRAM or NVM during the window.
    pub fast_read_ratio: f64,
}

/// The outcome of driving one engine with one workload.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Engine name.
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// Overall throughput in thousands of operations per simulated second.
    pub throughput_kops: f64,
    /// Mean operation latency in microseconds.
    pub mean_us: f64,
    /// Median operation latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile operation latency in microseconds.
    pub p99_us: f64,
    /// Per-operation-kind latency percentiles (microseconds).
    pub per_kind: HashMap<OpKind, KindLatency>,
    /// Engine statistics accumulated during the measured window only.
    pub stats: EngineStats,
    /// Simulated time spent in the measured window.
    pub elapsed: Nanos,
    /// Blended storage cost of the engine's devices.
    pub cost_per_gb: f64,
    /// Per-window results (length = `RunConfig::windows`).
    pub windows: Vec<Window>,
    /// All measured operation latencies, sorted ascending, in microseconds
    /// (used for CDF plots such as Figure 14a).
    pub read_latencies_us: Vec<f64>,
}

/// Latency summary for one operation kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct KindLatency {
    /// Number of operations of this kind.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64 / 1_000.0
}

/// Drives engines through load, warm-up and measurement phases.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    config: RunConfig,
}

impl Runner {
    /// Create a runner.
    pub fn new(config: RunConfig) -> Self {
        Runner { config }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    fn apply<E: KvStore + ?Sized>(engine: &mut E, op: &Op) -> Result<(Nanos, OpKind)> {
        let kind = op.kind();
        let latency = match op {
            Op::Read(key) => engine.get(key)?.latency,
            Op::Update(key, value) | Op::Insert(key, value) => {
                engine.put(key.clone(), value.clone())?
            }
            Op::ReadModifyWrite(key, value) => {
                let read = engine.get(key)?.latency;
                let write = engine.put(key.clone(), value.clone())?;
                read + write
            }
            Op::Scan(key, count) => engine.scan(key, *count)?.latency,
            Op::Delete(key) => engine.delete(key)?,
        };
        Ok((latency, kind))
    }

    /// Run the workload against `engine` and collect results.
    ///
    /// # Panics
    ///
    /// Panics if the engine returns an error (experiments are expected to be
    /// configured within capacity limits).
    pub fn run<E: KvStore + ?Sized>(
        &self,
        engine: &mut E,
        workload: &Workload,
        cost_per_gb: f64,
    ) -> RunResult {
        let spec = Workload {
            record_count: self.config.record_count,
            ..workload.clone()
        };
        let mut stream: OpStream = spec.stream(self.config.seed);

        // Load phase.
        for op in stream.load_ops() {
            Self::apply(engine, &op).expect("load phase must not fail");
        }
        // Warm-up phase.
        for _ in 0..self.config.warmup_ops {
            let op = stream.next().expect("stream is infinite");
            Self::apply(engine, &op).expect("warm-up must not fail");
        }

        // Measured phase, possibly split into windows.
        let mut latencies: Vec<u64> = Vec::with_capacity(self.config.measure_ops as usize);
        let mut by_kind: HashMap<OpKind, Vec<u64>> = HashMap::new();
        let mut windows = Vec::with_capacity(self.config.windows);
        let start_stats = engine.stats();
        let start_elapsed = engine.elapsed();
        let ops_per_window = (self.config.measure_ops / self.config.windows as u64).max(1);

        let mut window_stats = start_stats;
        let mut window_elapsed = start_elapsed;
        for w in 0..self.config.windows {
            for _ in 0..ops_per_window {
                let op = stream.next().expect("stream is infinite");
                let (latency, kind) = Self::apply(engine, &op).expect("measured ops must not fail");
                latencies.push(latency.as_nanos());
                by_kind.entry(kind).or_default().push(latency.as_nanos());
            }
            let now_stats = engine.stats();
            let now_elapsed = engine.elapsed();
            let delta = now_stats.delta_since(&window_stats);
            let took = now_elapsed.saturating_sub(window_elapsed);
            windows.push(Window {
                throughput_kops: if took.is_zero() {
                    0.0
                } else {
                    ops_per_window as f64 / took.as_secs_f64() / 1_000.0
                },
                fast_read_ratio: delta.fast_read_ratio(),
            });
            window_stats = now_stats;
            window_elapsed = now_elapsed;
            let _ = w;
        }

        let stats = engine.stats().delta_since(&start_stats);
        let elapsed = engine.elapsed().saturating_sub(start_elapsed);
        let measured_ops = ops_per_window * self.config.windows as u64;

        latencies.sort_unstable();
        let mean_us = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1_000.0
        };
        let per_kind = by_kind
            .into_iter()
            .map(|(kind, mut v)| {
                v.sort_unstable();
                let mean = v.iter().sum::<u64>() as f64 / v.len() as f64 / 1_000.0;
                (
                    kind,
                    KindLatency {
                        count: v.len() as u64,
                        mean_us: mean,
                        p50_us: percentile(&v, 0.5),
                        p99_us: percentile(&v, 0.99),
                    },
                )
            })
            .collect();

        let read_latencies_us: Vec<f64> = latencies.iter().map(|ns| *ns as f64 / 1_000.0).collect();

        RunResult {
            engine: engine.engine_name().to_string(),
            workload: spec.name.clone(),
            throughput_kops: if elapsed.is_zero() {
                0.0
            } else {
                measured_ops as f64 / elapsed.as_secs_f64() / 1_000.0
            },
            mean_us,
            p50_us: percentile(&latencies, 0.5),
            p99_us: percentile(&latencies, 0.99),
            per_kind,
            stats,
            elapsed,
            cost_per_gb,
            windows,
            read_latencies_us,
        }
    }
}

impl RunResult {
    /// Latency summary for one operation kind (zeroes if that kind never
    /// ran).
    pub fn kind(&self, kind: OpKind) -> KindLatency {
        self.per_kind.get(&kind).copied().unwrap_or_default()
    }

    /// Fraction of found reads served without touching flash.
    pub fn fast_read_ratio(&self) -> f64 {
        self.stats.fast_read_ratio()
    }

    /// A percentile (0.0–1.0) of the measured per-operation latencies, in
    /// microseconds.
    pub fn latency_percentile_us(&self, p: f64) -> f64 {
        if self.read_latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((self.read_latencies_us.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        self.read_latencies_us[idx.min(self.read_latencies_us.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines;
    use prism_workloads::Workload;

    #[test]
    fn percentiles_are_monotone() {
        let sorted = vec![100, 200, 300, 400, 1_000_000];
        assert!(percentile(&sorted, 0.5) <= percentile(&sorted, 0.99));
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn windows_split_the_measurement() {
        let config = RunConfig::quick(800).with_windows(4);
        let runner = Runner::new(config);
        let mut db = engines::prismdb(800);
        let cost = db.cost_per_gb();
        let result = runner.run(&mut db, &Workload::ycsb_b(800), cost);
        assert_eq!(result.windows.len(), 4);
        assert!(result.windows.iter().all(|w| w.throughput_kops >= 0.0));
        assert!(result.kind(prism_types::OpKind::Read).count > 0);
        assert!(result.latency_percentile_us(0.9) >= result.latency_percentile_us(0.1));
    }
}
