//! Benchmark harness reproducing every table and figure of the PrismDB
//! paper's evaluation (§7).
//!
//! The harness drives any engine implementing [`prism_types::KvStore`]
//! (PrismDB and the LSM baseline family) with the workloads from
//! `prism-workloads`, entirely in simulated time, and prints tables whose
//! rows correspond to the data series of the paper's tables and figures.
//!
//! * [`Runner`] — load / warm-up / measure phases, latency percentiles,
//!   statistics deltas.
//! * [`engines`] — factory functions building every engine configuration
//!   used in the evaluation at a given scale.
//! * [`experiments`] — one module per table/figure; each returns the
//!   [`report::Table`]s it prints. `cargo bench` runs one bench target per
//!   experiment (see `crates/bench/benches/`).
//! * [`Scale`] — experiment sizing. Scaled-down defaults keep a full
//!   `cargo bench` run in minutes while preserving the paper's capacity
//!   ratios; set `PRISM_BENCH_SCALE=paperish` for a larger run.
//!
//! # Example
//!
//! ```
//! use prism_bench::{engines, Runner, RunConfig};
//! use prism_workloads::Workload;
//!
//! let config = RunConfig::quick(2_000);
//! let runner = Runner::new(config);
//! let mut db = engines::prismdb(2_000);
//! let cost = db.cost_per_gb();
//! let result = runner.run(&mut db, &Workload::ycsb_a(2_000), cost);
//! assert!(result.throughput_kops > 0.0);
//! ```

pub mod engines;
pub mod experiments;
pub mod report;
mod runner;
mod scale;

pub use report::Table;
pub use runner::{AsyncRunResult, RunConfig, RunResult, Runner, ThreadedRunResult};
pub use scale::Scale;

#[cfg(test)]
mod tests {
    use super::*;
    use prism_workloads::Workload;

    #[test]
    fn quick_run_produces_sane_numbers() {
        let runner = Runner::new(RunConfig::quick(1_500));
        let mut db = engines::prismdb(1_500);
        let cost = db.cost_per_gb();
        let result = runner.run(&mut db, &Workload::ycsb_a(1_500), cost);
        assert!(result.throughput_kops > 0.0);
        assert!(result.p99_us >= result.p50_us);
        assert!(result.cost_per_gb > 0.0);
        assert!(result.stats.user_bytes_written > 0);
    }

    #[test]
    fn prism_beats_multitier_lsm_on_write_heavy_zipfian_workload() {
        // The headline claim of the paper (Table 2 / Figure 10a): on YCSB-A
        // with equivalently-sized tiers, PrismDB's throughput exceeds the
        // multi-tier LSM baseline.
        let keys = 4_000;
        let runner = Runner::new(RunConfig::quick(keys));
        let workload = Workload::ycsb_a(keys);

        let mut prism = engines::prismdb(keys);
        let prism_cost = prism.cost_per_gb();
        let prism_result = runner.run(&mut prism, &workload, prism_cost);

        let mut rocks = engines::rocksdb_het(keys);
        let rocks_cost = rocks.cost_per_gb();
        let rocks_result = runner.run(&mut rocks, &workload, rocks_cost);

        assert!(
            prism_result.throughput_kops > rocks_result.throughput_kops,
            "prism {:.1} kops should beat rocksdb-het {:.1} kops",
            prism_result.throughput_kops,
            rocks_result.throughput_kops
        );
    }
}
