//! Read snapshots and optimistic multi-key transactions.
//!
//! Engines that support a consistent read view implement the snapshot
//! methods of [`ConcurrentKvStore`]: `snapshot()` pins a monotone commit
//! sequence, and `snapshot_get` / `snapshot_scan` answer as of that
//! sequence while concurrent writers keep making progress. [`Transaction`]
//! layers optimistic concurrency control on top: reads go through a pinned
//! snapshot and are recorded in a read set, writes are buffered locally,
//! and `commit` asks the engine to validate that no read key changed after
//! the snapshot before applying the write buffer atomically.
//!
//! A conflict surfaces as [`PrismError::TxnConflict`]; the transaction was
//! not applied and the caller retries against a fresh snapshot (see
//! [`run_transaction`] for a ready-made retry loop).

use std::collections::HashMap;

use crate::{ConcurrentKvStore, Key, Nanos, PrismError, Result, Value, WriteBatch};

/// A pinned read snapshot: the engine answers `snapshot_get` /
/// `snapshot_scan` as of this commit sequence.
///
/// Snapshots are engine resources; pair every successful
/// [`ConcurrentKvStore::snapshot`] with a
/// [`ConcurrentKvStore::release_snapshot`] so the engine can garbage
/// collect superseded versions ([`Transaction`] does this automatically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotId(pub u64);

impl SnapshotId {
    /// The pinned commit sequence: versions with `seq <= sequence()` are
    /// visible, later writes are not.
    pub fn sequence(&self) -> u64 {
        self.0
    }
}

/// An optimistic multi-key transaction over a [`ConcurrentKvStore`].
///
/// Reads see the state at the transaction's snapshot plus the
/// transaction's own buffered writes; nothing is published until
/// [`Transaction::commit`], which applies the write buffer atomically
/// (all partitions or none) after validating the read set.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use prism_types::{ConcurrentKvStore, Key, MemStore, MutexKv, Transaction};
///
/// let engine = Arc::new(MutexKv::new(MemStore::default()));
/// // MutexKv has no snapshot support, so beginning a transaction fails
/// // with `Unsupported` — engines like PrismDB accept it.
/// assert!(Transaction::begin(engine.as_ref()).is_err());
/// ```
pub struct Transaction<'a, E: ConcurrentKvStore + ?Sized> {
    engine: &'a E,
    snapshot: SnapshotId,
    /// Keys read through the snapshot, validated at commit.
    reads: Vec<Key>,
    read_ids: HashMap<u64, ()>,
    /// Buffered writes in submission order (last write per key wins).
    writes: WriteBatch,
    /// Latest buffered write per key, for read-your-writes.
    write_tail: HashMap<u64, Option<Value>>,
    finished: bool,
}

impl<'a, E: ConcurrentKvStore + ?Sized> Transaction<'a, E> {
    /// Pin a snapshot and start a transaction.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::Unsupported`] if the engine has no snapshot
    /// support.
    pub fn begin(engine: &'a E) -> Result<Self> {
        let snapshot = engine.snapshot()?;
        Ok(Transaction {
            engine,
            snapshot,
            reads: Vec::new(),
            read_ids: HashMap::new(),
            writes: WriteBatch::new(),
            write_tail: HashMap::new(),
            finished: false,
        })
    }

    /// The snapshot this transaction reads through.
    pub fn snapshot(&self) -> SnapshotId {
        self.snapshot
    }

    /// Read `key`: the transaction's own buffered write if any, otherwise
    /// the value at the snapshot. The key joins the read set (unless the
    /// transaction already overwrote it) and is validated at commit.
    ///
    /// # Errors
    ///
    /// Returns an error only on internal corruption.
    pub fn get(&mut self, key: &Key) -> Result<Option<Value>> {
        if let Some(buffered) = self.write_tail.get(&key.id()) {
            return Ok(buffered.clone());
        }
        if self.read_ids.insert(key.id(), ()).is_none() {
            self.reads.push(key.clone());
        }
        let lookup = self.engine.snapshot_get(self.snapshot, key)?;
        Ok(lookup)
    }

    /// Buffer an insert/update of `key`.
    pub fn put(&mut self, key: Key, value: Value) {
        self.write_tail.insert(key.id(), Some(value.clone()));
        self.writes.put(key, value);
    }

    /// Buffer a delete of `key`.
    pub fn delete(&mut self, key: Key) {
        self.write_tail.insert(key.id(), None);
        self.writes.delete(key);
    }

    /// Number of buffered write operations.
    pub fn pending_writes(&self) -> usize {
        self.writes.len()
    }

    /// Validate the read set and atomically apply the buffered writes.
    ///
    /// Returns the simulated service time of the commit. On
    /// [`PrismError::TxnConflict`] nothing was applied; retry with a fresh
    /// transaction. The snapshot is released either way.
    ///
    /// # Errors
    ///
    /// [`PrismError::TxnConflict`] if a read key changed after the
    /// snapshot; write errors ([`PrismError::CapacityExceeded`], ...) are
    /// forwarded from the engine with nothing applied.
    pub fn commit(mut self) -> Result<Nanos> {
        self.finished = true;
        let writes = std::mem::take(&mut self.writes);
        let result = self.engine.txn_commit(self.snapshot, &self.reads, writes);
        self.engine.release_snapshot(self.snapshot);
        result
    }

    /// Abandon the transaction, releasing its snapshot. Buffered writes
    /// are discarded; this cannot fail.
    pub fn rollback(mut self) {
        self.finished = true;
        self.engine.release_snapshot(self.snapshot);
    }
}

impl<E: ConcurrentKvStore + ?Sized> Drop for Transaction<'_, E> {
    fn drop(&mut self) {
        if !self.finished {
            self.engine.release_snapshot(self.snapshot);
        }
    }
}

/// Run `body` inside a transaction, retrying on [`PrismError::TxnConflict`]
/// up to `max_retries` additional attempts.
///
/// `body` may return `Err` to abort (the transaction is rolled back and the
/// error forwarded). On success the transaction commits and the body's
/// value is returned.
///
/// # Errors
///
/// The last [`PrismError::TxnConflict`] once retries are exhausted, or the
/// first non-conflict error from `body` / the engine.
pub fn run_transaction<E, T, F>(engine: &E, max_retries: usize, mut body: F) -> Result<T>
where
    E: ConcurrentKvStore + ?Sized,
    F: FnMut(&mut Transaction<'_, E>) -> Result<T>,
{
    let mut attempt = 0;
    loop {
        let mut txn = Transaction::begin(engine)?;
        let out = match body(&mut txn) {
            Ok(out) => out,
            Err(err) => {
                txn.rollback();
                return Err(err);
            }
        };
        match txn.commit() {
            Ok(_) => return Ok(out),
            Err(PrismError::TxnConflict { .. }) if attempt < max_retries => {
                attempt += 1;
            }
            Err(err) => return Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemStore, MutexKv};

    #[test]
    fn unsupported_engine_rejects_transactions() {
        let engine = MutexKv::new(MemStore::default());
        match Transaction::begin(&engine) {
            Err(PrismError::Unsupported(what)) => assert_eq!(what, "snapshots"),
            Err(other) => panic!("expected Unsupported, got {other:?}"),
            Ok(_) => panic!("expected Unsupported, got a transaction"),
        }
        // The retry helper forwards the same error without looping.
        let run: Result<()> = run_transaction(&engine, 3, |_txn| Ok(()));
        assert!(matches!(run, Err(PrismError::Unsupported(_))));
    }

    #[test]
    fn snapshot_id_exposes_sequence() {
        let snap = SnapshotId(42);
        assert_eq!(snap.sequence(), 42);
    }
}
