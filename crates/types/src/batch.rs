//! Batched writes (group commit).
//!
//! A [`WriteBatch`] collects puts and deletes so an engine can install
//! them as a group instead of paying the per-operation overhead (request
//! handling, lock acquisition, tracker drains, watermark checks) once per
//! entry. Batches may span partitions; engines group the entries
//! internally. The atomicity contract is engine-specific — PrismDB
//! installs each partition's sub-batch atomically (all-or-nothing with
//! respect to concurrent readers and crash recovery) but does *not* make
//! the batch atomic across partitions.
//!
//! Entries are ordered: applying a batch is equivalent to applying its
//! entries front to back, so when one key appears several times the last
//! entry wins.

use crate::{Key, Value};

/// One entry of a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or update `key` with the value.
    Put(Key, Value),
    /// Delete `key` (deleting a non-existent key is not an error).
    Delete(Key),
}

impl BatchOp {
    /// The key this entry targets.
    pub fn key(&self) -> &Key {
        match self {
            BatchOp::Put(key, _) | BatchOp::Delete(key) => key,
        }
    }

    /// True for [`BatchOp::Put`].
    pub fn is_put(&self) -> bool {
        matches!(self, BatchOp::Put(_, _))
    }
}

/// An ordered collection of writes applied as a group.
///
/// # Example
///
/// ```
/// use prism_types::{Key, KvStore, MemStore, Value, WriteBatch};
///
/// let mut batch = WriteBatch::new();
/// batch.put(Key::from_id(1), Value::filled(8, 1));
/// batch.put(Key::from_id(2), Value::filled(8, 2));
/// batch.delete(Key::from_id(1));
/// assert_eq!(batch.len(), 3);
///
/// let mut store = MemStore::default();
/// store.apply_batch(batch).unwrap();
/// assert!(store.get(&Key::from_id(1)).unwrap().value.is_none());
/// assert!(store.get(&Key::from_id(2)).unwrap().value.is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    entries: Vec<BatchOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// An empty batch with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        WriteBatch {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Append an insert/update entry.
    pub fn put(&mut self, key: Key, value: Value) {
        self.entries.push(BatchOp::Put(key, value));
    }

    /// Append a delete entry.
    pub fn delete(&mut self, key: Key) {
        self.entries.push(BatchOp::Delete(key));
    }

    /// Append an already-constructed entry.
    pub fn push(&mut self, op: BatchOp) {
        self.entries.push(op);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the batch holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in application order.
    pub fn entries(&self) -> &[BatchOp] {
        &self.entries
    }

    /// Consume the batch, yielding its entries in application order.
    pub fn into_entries(self) -> Vec<BatchOp> {
        self.entries
    }

    /// Drop all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl IntoIterator for WriteBatch {
    type Item = BatchOp;
    type IntoIter = std::vec::IntoIter<BatchOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl Extend<BatchOp> for WriteBatch {
    fn extend<T: IntoIterator<Item = BatchOp>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_collects_entries_in_order() {
        let mut batch = WriteBatch::with_capacity(3);
        assert!(batch.is_empty());
        batch.put(Key::from_id(1), Value::filled(4, 1));
        batch.delete(Key::from_id(2));
        batch.push(BatchOp::Put(Key::from_id(3), Value::filled(4, 3)));
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.entries()[0].key(), &Key::from_id(1));
        assert!(batch.entries()[0].is_put());
        assert!(!batch.entries()[1].is_put());
        let keys: Vec<u64> = batch.clone().into_iter().map(|op| op.key().id()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        let entries = batch.into_entries();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn batch_extend_and_clear() {
        let mut batch = WriteBatch::new();
        batch.extend(vec![
            BatchOp::Delete(Key::from_id(1)),
            BatchOp::Put(Key::from_id(2), Value::filled(2, 2)),
        ]);
        assert_eq!(batch.len(), 2);
        batch.clear();
        assert!(batch.is_empty());
    }
}
