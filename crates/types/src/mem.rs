//! A trivially correct in-memory engine, used as a reference oracle.
//!
//! `MemStore` keeps the whole database in one `BTreeMap` and charges flat
//! latencies. It exists so differential tests can drive a real engine and
//! the oracle with the same operation stream and compare visible state: any
//! divergence is a bug in the real engine (tombstone handling, stale flash
//! versions, cross-partition scan merges, ...), never in the oracle.

use std::collections::BTreeMap;

use crate::{
    BatchOp, EngineStats, Key, KvStore, Lookup, Nanos, ReadSource, Result, ScanResult, Value,
    WriteBatch,
};

/// An in-memory [`KvStore`] backed by a `BTreeMap`.
///
/// # Example
///
/// ```
/// use prism_types::{Key, KvStore, MemStore, Value};
///
/// let mut oracle = MemStore::default();
/// oracle.put(Key::from_id(1), Value::filled(8, 7)).unwrap();
/// assert_eq!(oracle.len(), 1);
/// assert!(oracle.get(&Key::from_id(1)).unwrap().value.is_some());
/// ```
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    map: BTreeMap<Key, Value>,
    clock: Nanos,
    reads_found: u64,
    reads_not_found: u64,
    user_bytes_written: u64,
    batch_groups: u64,
    batch_entries: u64,
}

impl MemStore {
    /// Latency charged per write.
    const PUT_COST: Nanos = Nanos::from_nanos(100);
    /// Latency charged per read.
    const GET_COST: Nanos = Nanos::from_nanos(50);
    /// Latency charged per delete.
    const DELETE_COST: Nanos = Nanos::from_nanos(80);
    /// Latency charged per scan.
    const SCAN_COST: Nanos = Nanos::from_nanos(500);
    /// Flat latency charged per batch (group commit), plus this much per
    /// entry — deliberately cheaper than per-op application so the oracle
    /// mirrors the amortisation real engines get from batching.
    const BATCH_BASE_COST: Nanos = Nanos::from_nanos(100);
    /// Per-entry increment of a batched write.
    const BATCH_ENTRY_COST: Nanos = Nanos::from_nanos(20);

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True if `key` is live.
    pub fn contains_key(&self, key: &Key) -> bool {
        self.map.contains_key(key)
    }

    /// The live entries in key order (the oracle's whole visible state).
    pub fn entries(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.map.iter()
    }
}

impl KvStore for MemStore {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        self.user_bytes_written += value.len() as u64;
        self.map.insert(key, value);
        self.clock += Self::PUT_COST;
        Ok(Self::PUT_COST)
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        self.clock += Self::GET_COST;
        let value = self.map.get(key).cloned();
        let source = if value.is_some() {
            self.reads_found += 1;
            ReadSource::Dram
        } else {
            self.reads_not_found += 1;
            ReadSource::NotFound
        };
        Ok(Lookup {
            value,
            latency: Self::GET_COST,
            source,
        })
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        self.map.remove(key);
        self.clock += Self::DELETE_COST;
        Ok(Self::DELETE_COST)
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        self.clock += Self::SCAN_COST;
        let entries: Vec<(Key, Value)> = self
            .map
            .range(start.clone()..)
            .take(count)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Ok(ScanResult {
            entries,
            latency: Self::SCAN_COST,
        })
    }

    fn apply_batch(&mut self, batch: WriteBatch) -> Result<Nanos> {
        if batch.is_empty() {
            return Ok(Nanos::ZERO);
        }
        let entries = batch.into_entries();
        let cost = Self::BATCH_BASE_COST + Self::BATCH_ENTRY_COST * entries.len() as u64;
        self.batch_groups += 1;
        self.batch_entries += entries.len() as u64;
        for op in entries {
            match op {
                BatchOp::Put(key, value) => {
                    self.user_bytes_written += value.len() as u64;
                    self.map.insert(key, value);
                }
                BatchOp::Delete(key) => {
                    self.map.remove(&key);
                }
            }
        }
        self.clock += cost;
        Ok(cost)
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            reads_from_dram: self.reads_found,
            reads_not_found: self.reads_not_found,
            user_bytes_written: self.user_bytes_written,
            batch_groups: self.batch_groups,
            batch_entries: self.batch_entries,
            ..EngineStats::default()
        }
    }

    fn elapsed(&self) -> Nanos {
        self.clock
    }

    fn engine_name(&self) -> &str {
        "memstore"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_round_trip() {
        let mut store = MemStore::default();
        store.put(Key::from_id(3), Value::filled(16, 9)).unwrap();
        let got = store.get(&Key::from_id(3)).unwrap();
        assert_eq!(got.value.unwrap().as_bytes()[0], 9);
        assert_eq!(got.source, ReadSource::Dram);
        store.delete(&Key::from_id(3)).unwrap();
        assert!(store.get(&Key::from_id(3)).unwrap().value.is_none());
        assert!(store.is_empty());
        assert!(!store.contains_key(&Key::from_id(3)));
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let mut store = MemStore::default();
        for id in [9u64, 2, 7, 4] {
            store
                .put(Key::from_id(id), Value::filled(4, id as u8))
                .unwrap();
        }
        let res = store.scan(&Key::from_id(3), 2).unwrap();
        let ids: Vec<u64> = res.entries.iter().map(|(k, _)| k.id()).collect();
        assert_eq!(ids, vec![4, 7]);
        assert_eq!(store.entries().count(), 4);
    }

    #[test]
    fn batched_application_matches_sequential_and_is_cheaper() {
        let mut batched = MemStore::default();
        let mut sequential = MemStore::default();
        let mut batch = WriteBatch::new();
        for id in 0..10u64 {
            let value = Value::filled(8, id as u8);
            batch.put(Key::from_id(id), value.clone());
            sequential.put(Key::from_id(id), value).unwrap();
        }
        batch.delete(Key::from_id(3));
        sequential.delete(&Key::from_id(3)).unwrap();
        // Duplicate key inside the batch: the last entry wins.
        batch.put(Key::from_id(4), Value::filled(8, 99));
        sequential
            .put(Key::from_id(4), Value::filled(8, 99))
            .unwrap();
        let cost = batched.apply_batch(batch).unwrap();
        assert!(cost < sequential.elapsed(), "batching must amortise cost");
        let a: Vec<_> = batched.entries().collect();
        let b: Vec<_> = sequential.entries().collect();
        assert_eq!(a, b);
        assert_eq!(batched.stats().batch_groups, 1);
        assert_eq!(batched.stats().batch_entries, 12);
        assert_eq!(batched.apply_batch(WriteBatch::new()).unwrap(), Nanos::ZERO);
    }

    #[test]
    fn stats_track_reads_and_writes() {
        let mut store = MemStore::default();
        store.put(Key::from_id(1), Value::filled(32, 0)).unwrap();
        store.get(&Key::from_id(1)).unwrap();
        store.get(&Key::from_id(2)).unwrap();
        let stats = store.stats();
        assert_eq!(stats.reads_found(), 1);
        assert_eq!(stats.reads_not_found, 1);
        assert_eq!(stats.user_bytes_written, 32);
        assert!(store.elapsed() > Nanos::ZERO);
        assert_eq!(store.engine_name(), "memstore");
    }
}
