//! Cumulative statistics exposed by storage engines.

use serde::{Deserialize, Serialize};

use crate::Nanos;

/// I/O counters for one storage tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierIo {
    /// Bytes read from the tier.
    pub bytes_read: u64,
    /// Bytes written to the tier.
    pub bytes_written: u64,
    /// Number of read operations issued to the tier.
    pub reads: u64,
    /// Number of write operations issued to the tier.
    pub writes: u64,
}

impl TierIo {
    /// Element-wise sum of two counters.
    pub fn merged(self, other: TierIo) -> TierIo {
        TierIo {
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
        }
    }

    /// Element-wise difference (`self - earlier`), saturating at zero.
    pub fn delta_since(self, earlier: TierIo) -> TierIo {
        TierIo {
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }
}

/// Compaction / background-work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactionStats {
    /// Number of compaction (or flush) jobs executed.
    pub jobs: u64,
    /// Total simulated time spent in background compaction work.
    pub total_time: Nanos,
    /// Simulated time spent compacting data that lives on the fast tier.
    pub fast_tier_time: Nanos,
    /// Simulated time spent compacting data that lives on the slow tier.
    pub slow_tier_time: Nanos,
    /// Objects demoted from the fast tier to the slow tier.
    pub demoted_objects: u64,
    /// Objects promoted from the slow tier to the fast tier.
    pub promoted_objects: u64,
    /// Total foreground write-stall time caused by background work.
    pub stall_time: Nanos,
    /// Simulated compaction time that was executed on background workers
    /// and therefore overlapped with foreground service instead of
    /// stalling it. Zero for engines that compact inline.
    pub overlap_time: Nanos,
    /// Number of foreground operations that hit the back-pressure ceiling
    /// and had to wait for a background worker to free space.
    pub backpressure_stalls: u64,
    /// Compaction job requests accepted onto the background queue (after
    /// the scheduler's per-partition dedup). The batched write path checks
    /// the watermark once per partition sub-batch, so one batch accepts at
    /// most one demotion enqueue per touched partition.
    pub enqueued_jobs: u64,
    /// Instantaneous number of compaction jobs waiting for a background
    /// worker (a gauge: `delta_since` keeps the later snapshot's value).
    pub queue_depth: u64,
    /// Highest queue depth observed so far (a cumulative high-water mark;
    /// `delta_since` keeps the later snapshot's value).
    pub max_queue_depth: u64,
}

impl CompactionStats {
    /// Element-wise difference (`self - earlier`).
    pub fn delta_since(self, earlier: CompactionStats) -> CompactionStats {
        CompactionStats {
            jobs: self.jobs.saturating_sub(earlier.jobs),
            total_time: self.total_time.saturating_sub(earlier.total_time),
            fast_tier_time: self.fast_tier_time.saturating_sub(earlier.fast_tier_time),
            slow_tier_time: self.slow_tier_time.saturating_sub(earlier.slow_tier_time),
            demoted_objects: self.demoted_objects.saturating_sub(earlier.demoted_objects),
            promoted_objects: self
                .promoted_objects
                .saturating_sub(earlier.promoted_objects),
            stall_time: self.stall_time.saturating_sub(earlier.stall_time),
            overlap_time: self.overlap_time.saturating_sub(earlier.overlap_time),
            backpressure_stalls: self
                .backpressure_stalls
                .saturating_sub(earlier.backpressure_stalls),
            enqueued_jobs: self.enqueued_jobs.saturating_sub(earlier.enqueued_jobs),
            // Gauges, not counters: report the state at the later snapshot.
            queue_depth: self.queue_depth,
            max_queue_depth: self.max_queue_depth,
        }
    }
}

/// Cumulative statistics reported by an async submission front-end.
///
/// The front-end multiplexes many logical clients onto a few executor
/// threads via bounded per-partition request queues; these counters
/// expose how much coalescing and back-pressure that produced. They are
/// deliberately separate from [`EngineStats`]: the front-end is a layer
/// *above* any engine, and one engine may serve several front-ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendStats {
    /// Requests accepted onto a partition queue.
    pub submitted: u64,
    /// Requests fully serviced (their ticket completed).
    pub completed: u64,
    /// `try_submit` attempts rejected with back-pressure (bounded queue
    /// full, or shrunk by the engine's watermark pressure hint).
    pub rejected: u64,
    /// Write groups installed by executors via `apply_batch` (one per
    /// partition-queue drain chunk).
    pub coalesced_groups: u64,
    /// Write entries carried by those groups. `coalesced_entries /
    /// coalesced_groups` is the mean coalesce width — the group-commit
    /// amortisation that emerges from queue pressure.
    pub coalesced_entries: u64,
    /// Times an executor thread was woken from its idle wait.
    pub wakeups: u64,
    /// Queue drains an executor performed on a partition it does not own
    /// (work stealing): an idle executor that finds its own partitions
    /// empty sweeps its neighbours' queues, so one Zipfian-hot partition
    /// no longer bottlenecks on its owner's throughput.
    pub stolen_drains: u64,
    /// Instantaneous number of requests waiting in partition queues (a
    /// gauge: `delta_since` keeps the later snapshot's value).
    pub queue_depth: u64,
    /// Highest single-partition queue depth observed (a cumulative
    /// high-water mark; `delta_since` keeps the later snapshot's value).
    pub max_queue_depth: u64,
    /// Highest *total* queued-request count observed across all
    /// partition queues at once (a cumulative high-water mark;
    /// `delta_since` keeps the later snapshot's value). Compare against
    /// `queue_depth` to see peak aggregate pressure, not just the final
    /// state.
    pub max_total_queue_depth: u64,
    /// Instantaneous number of tickets handed out but neither completed
    /// nor abandoned (a gauge: `delta_since` keeps the later snapshot's
    /// value). After a graceful drain this must read zero — a non-zero
    /// value means a client request was stranded.
    pub outstanding_tickets: u64,
    /// Highest outstanding-ticket count ever observed (a cumulative
    /// high-water mark; `delta_since` keeps the later snapshot's value):
    /// the peak number of requests in flight between submission and
    /// completion.
    pub max_outstanding_tickets: u64,
}

impl FrontendStats {
    /// Mean number of write entries coalesced into one installed group
    /// (0.0 before any group was installed).
    pub fn mean_coalesce_width(&self) -> f64 {
        if self.coalesced_groups == 0 {
            return 0.0;
        }
        self.coalesced_entries as f64 / self.coalesced_groups as f64
    }

    /// Element-wise difference (`self - earlier`); gauges keep the later
    /// snapshot's value.
    pub fn delta_since(self, earlier: FrontendStats) -> FrontendStats {
        FrontendStats {
            submitted: self.submitted.saturating_sub(earlier.submitted),
            completed: self.completed.saturating_sub(earlier.completed),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            coalesced_groups: self
                .coalesced_groups
                .saturating_sub(earlier.coalesced_groups),
            coalesced_entries: self
                .coalesced_entries
                .saturating_sub(earlier.coalesced_entries),
            wakeups: self.wakeups.saturating_sub(earlier.wakeups),
            stolen_drains: self.stolen_drains.saturating_sub(earlier.stolen_drains),
            queue_depth: self.queue_depth,
            max_queue_depth: self.max_queue_depth,
            max_total_queue_depth: self.max_total_queue_depth,
            outstanding_tickets: self.outstanding_tickets,
            max_outstanding_tickets: self.max_outstanding_tickets,
        }
    }
}

/// Cumulative statistics reported by a network server ([`delta_since`]
/// isolates a measurement window; gauges keep the later snapshot's value).
///
/// [`delta_since`]: NetStats::delta_since
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Connections accepted by the listener.
    pub connections_accepted: u64,
    /// Connections fully torn down (reader and responder both finished).
    pub connections_closed: u64,
    /// Request frames decoded successfully.
    pub frames_received: u64,
    /// Response frames written to a transport.
    pub frames_sent: u64,
    /// Payload bytes received in decoded request frames.
    pub bytes_received: u64,
    /// Payload bytes written in response frames.
    pub bytes_sent: u64,
    /// Malformed frames that produced a `ProtocolError` response (or, when
    /// the length prefix itself was unsound, tore down the connection).
    pub protocol_errors: u64,
    /// Requests refused with the retryable `Backpressure` wire status
    /// because the submission queue was full.
    pub backpressure_rejections: u64,
    /// Requests refused with `ShuttingDown` while the server drained.
    pub shutdown_refusals: u64,
    /// Instantaneous number of requests accepted from the wire but not yet
    /// answered (a gauge: `delta_since` keeps the later snapshot's value).
    pub in_flight: u64,
    /// Highest per-server in-flight count observed (a cumulative
    /// high-water mark; `delta_since` keeps the later snapshot's value).
    pub max_in_flight: u64,
    /// Highest in-flight count observed on any *single* connection (a
    /// cumulative high-water mark; `delta_since` keeps the later
    /// snapshot's value): how close the busiest connection came to its
    /// per-connection pipelining window.
    pub max_conn_in_flight: u64,
}

impl NetStats {
    /// Element-wise difference (`self - earlier`); gauges keep the later
    /// snapshot's value.
    pub fn delta_since(self, earlier: NetStats) -> NetStats {
        NetStats {
            connections_accepted: self
                .connections_accepted
                .saturating_sub(earlier.connections_accepted),
            connections_closed: self
                .connections_closed
                .saturating_sub(earlier.connections_closed),
            frames_received: self.frames_received.saturating_sub(earlier.frames_received),
            frames_sent: self.frames_sent.saturating_sub(earlier.frames_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            protocol_errors: self.protocol_errors.saturating_sub(earlier.protocol_errors),
            backpressure_rejections: self
                .backpressure_rejections
                .saturating_sub(earlier.backpressure_rejections),
            shutdown_refusals: self
                .shutdown_refusals
                .saturating_sub(earlier.shutdown_refusals),
            in_flight: self.in_flight,
            max_in_flight: self.max_in_flight,
            max_conn_in_flight: self.max_conn_in_flight,
        }
    }
}

/// Snapshot, transaction and cross-partition commit-log counters.
///
/// All fields are monotone counters; engines without snapshot/transaction
/// support report all-zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnStats {
    /// Read snapshots pinned via `ConcurrentKvStore::snapshot` (including
    /// the snapshot every transaction and every scan pins internally).
    pub snapshots: u64,
    /// Transactions that validated their read set and committed.
    pub txn_commits: u64,
    /// Transactions rejected at commit with `TxnConflict`.
    pub txn_conflicts: u64,
    /// Cross-partition commit intents persisted to the commit log.
    pub commit_intents: u64,
    /// Commit records sealed after every partition group installed.
    pub commit_seals: u64,
    /// Sealed commit records acknowledged (replayed) during recovery.
    pub commit_replayed: u64,
    /// Unsealed (torn) commit records rolled back during recovery.
    pub commit_rolled_back: u64,
}

impl TxnStats {
    /// Element-wise difference (`self - earlier`).
    pub fn delta_since(self, earlier: TxnStats) -> TxnStats {
        TxnStats {
            snapshots: self.snapshots.saturating_sub(earlier.snapshots),
            txn_commits: self.txn_commits.saturating_sub(earlier.txn_commits),
            txn_conflicts: self.txn_conflicts.saturating_sub(earlier.txn_conflicts),
            commit_intents: self.commit_intents.saturating_sub(earlier.commit_intents),
            commit_seals: self.commit_seals.saturating_sub(earlier.commit_seals),
            commit_replayed: self.commit_replayed.saturating_sub(earlier.commit_replayed),
            commit_rolled_back: self
                .commit_rolled_back
                .saturating_sub(earlier.commit_rolled_back),
        }
    }
}

/// Health of one partition under corruption pressure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionHealth {
    /// No unresolved corruption: reads and writes both served.
    #[default]
    Healthy,
    /// The partition crossed its corruption threshold: reads and scans are
    /// still served (quarantined objects skipped), writes are refused with
    /// the retryable `Degraded` error until a scrub pass comes back clean.
    Degraded,
}

/// Integrity, fault-injection and scrubber counters.
///
/// All fields are monotone counters except the gauges noted; engines
/// without the integrity subsystem report all-zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrityStats {
    /// Checksum mismatches detected on any read, recovery scan, scrub
    /// walk, or compaction execute (each corrupt object counted each time
    /// it is observed until quarantined).
    pub checksum_failures: u64,
    /// Injected I/O errors surfaced to callers as `PrismError::Io`.
    pub io_errors: u64,
    /// Objects quarantined (replaced by a tombstone-with-error sentinel)
    /// after corruption was detected.
    pub quarantined_objects: u64,
    /// Corrupt objects repaired by a scrub pass from a surviving clean
    /// copy instead of quarantined.
    pub scrub_repairs: u64,
    /// Scrub passes completed (clean or not).
    pub scrub_passes: u64,
    /// Scrub passes that found no corruption and re-armed a degraded
    /// partition.
    pub scrub_clean_passes: u64,
    /// Writes refused with the retryable `Degraded` error.
    pub degraded_write_refusals: u64,
    /// Times a partition entered degraded (read-only) mode.
    pub degraded_entered: u64,
    /// Times a clean scrub pass returned a degraded partition to healthy.
    pub degraded_recovered: u64,
    /// Snapshots aborted with `SnapshotExpired` by the pin age or history
    /// byte caps.
    pub snapshots_expired: u64,
    /// Instantaneous number of partitions currently degraded (a gauge:
    /// `delta_since` keeps the later snapshot's value).
    pub degraded_partitions: u64,
}

impl IntegrityStats {
    /// Element-wise sum (for aggregating per-partition counters).
    pub fn merged(self, other: IntegrityStats) -> IntegrityStats {
        IntegrityStats {
            checksum_failures: self.checksum_failures + other.checksum_failures,
            io_errors: self.io_errors + other.io_errors,
            quarantined_objects: self.quarantined_objects + other.quarantined_objects,
            scrub_repairs: self.scrub_repairs + other.scrub_repairs,
            scrub_passes: self.scrub_passes + other.scrub_passes,
            scrub_clean_passes: self.scrub_clean_passes + other.scrub_clean_passes,
            degraded_write_refusals: self.degraded_write_refusals + other.degraded_write_refusals,
            degraded_entered: self.degraded_entered + other.degraded_entered,
            degraded_recovered: self.degraded_recovered + other.degraded_recovered,
            snapshots_expired: self.snapshots_expired + other.snapshots_expired,
            degraded_partitions: self.degraded_partitions + other.degraded_partitions,
        }
    }

    /// Element-wise difference (`self - earlier`); the gauge keeps the
    /// later snapshot's value.
    pub fn delta_since(self, earlier: IntegrityStats) -> IntegrityStats {
        IntegrityStats {
            checksum_failures: self
                .checksum_failures
                .saturating_sub(earlier.checksum_failures),
            io_errors: self.io_errors.saturating_sub(earlier.io_errors),
            quarantined_objects: self
                .quarantined_objects
                .saturating_sub(earlier.quarantined_objects),
            scrub_repairs: self.scrub_repairs.saturating_sub(earlier.scrub_repairs),
            scrub_passes: self.scrub_passes.saturating_sub(earlier.scrub_passes),
            scrub_clean_passes: self
                .scrub_clean_passes
                .saturating_sub(earlier.scrub_clean_passes),
            degraded_write_refusals: self
                .degraded_write_refusals
                .saturating_sub(earlier.degraded_write_refusals),
            degraded_entered: self
                .degraded_entered
                .saturating_sub(earlier.degraded_entered),
            degraded_recovered: self
                .degraded_recovered
                .saturating_sub(earlier.degraded_recovered),
            snapshots_expired: self
                .snapshots_expired
                .saturating_sub(earlier.snapshots_expired),
            degraded_partitions: self.degraded_partitions,
        }
    }
}

/// Cumulative statistics reported by an engine via [`crate::KvStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Reads served from DRAM (caches / memtables).
    pub reads_from_dram: u64,
    /// Reads served from the NVM tier.
    pub reads_from_nvm: u64,
    /// Reads served from the flash tier.
    pub reads_from_flash: u64,
    /// Lookups that found no value.
    pub reads_not_found: u64,
    /// I/O issued to the NVM device (foreground + background).
    pub nvm_io: TierIo,
    /// I/O issued to the flash device (foreground + background).
    pub flash_io: TierIo,
    /// Background compaction counters.
    pub compaction: CompactionStats,
    /// Bytes of logical user data written by clients (used to derive write
    /// amplification: `flash_io.bytes_written / user_bytes_written`).
    pub user_bytes_written: u64,
    /// Write-batch groups installed (for PrismDB: per-partition sub-batch
    /// installs; for single-shard engines: one per batch).
    pub batch_groups: u64,
    /// Write-batch entries applied through the batched path (including
    /// entries merged away as duplicates).
    pub batch_entries: u64,
    /// Batched entries that were superseded by a later entry for the same
    /// key in the same partition sub-batch and therefore never touched the
    /// storage tiers (the "merge adjacent slab writes" win).
    pub batch_merged_writes: u64,
    /// Per-LSM-level read counters (index 0 = L0). Engines without levels
    /// leave this empty.
    pub reads_per_level: [u64; 8],
    /// Snapshot / transaction / commit-log counters (all-zero for engines
    /// without snapshot support).
    pub txn: TxnStats,
    /// Integrity, fault-injection and scrubber counters (all-zero for
    /// engines without the integrity subsystem).
    pub integrity: IntegrityStats,
}

impl EngineStats {
    /// Total number of point reads that found a value.
    pub fn reads_found(&self) -> u64 {
        self.reads_from_dram + self.reads_from_nvm + self.reads_from_flash
    }

    /// Fraction of found reads served without touching flash.
    ///
    /// Returns 1.0 when no reads have been served yet so that a freshly
    /// started engine does not look like it is flash-bound.
    pub fn fast_read_ratio(&self) -> f64 {
        let total = self.reads_found();
        if total == 0 {
            return 1.0;
        }
        (self.reads_from_dram + self.reads_from_nvm) as f64 / total as f64
    }

    /// Write amplification on flash relative to user-written bytes.
    pub fn flash_write_amplification(&self) -> f64 {
        if self.user_bytes_written == 0 {
            return 0.0;
        }
        self.flash_io.bytes_written as f64 / self.user_bytes_written as f64
    }

    /// Element-wise difference (`self - earlier`), used by the harness to
    /// isolate the measurement window from the load/warm-up phases.
    pub fn delta_since(&self, earlier: &EngineStats) -> EngineStats {
        let mut reads_per_level = [0u64; 8];
        for (i, slot) in reads_per_level.iter_mut().enumerate() {
            *slot = self.reads_per_level[i].saturating_sub(earlier.reads_per_level[i]);
        }
        EngineStats {
            reads_from_dram: self.reads_from_dram.saturating_sub(earlier.reads_from_dram),
            reads_from_nvm: self.reads_from_nvm.saturating_sub(earlier.reads_from_nvm),
            reads_from_flash: self
                .reads_from_flash
                .saturating_sub(earlier.reads_from_flash),
            reads_not_found: self.reads_not_found.saturating_sub(earlier.reads_not_found),
            nvm_io: self.nvm_io.delta_since(earlier.nvm_io),
            flash_io: self.flash_io.delta_since(earlier.flash_io),
            compaction: self.compaction.delta_since(earlier.compaction),
            user_bytes_written: self
                .user_bytes_written
                .saturating_sub(earlier.user_bytes_written),
            batch_groups: self.batch_groups.saturating_sub(earlier.batch_groups),
            batch_entries: self.batch_entries.saturating_sub(earlier.batch_entries),
            batch_merged_writes: self
                .batch_merged_writes
                .saturating_sub(earlier.batch_merged_writes),
            reads_per_level,
            txn: self.txn.delta_since(earlier.txn),
            integrity: self.integrity.delta_since(earlier.integrity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrity_stats_delta_keeps_gauge_and_merges() {
        let earlier = IntegrityStats {
            checksum_failures: 2,
            quarantined_objects: 1,
            scrub_passes: 3,
            degraded_partitions: 1,
            ..IntegrityStats::default()
        };
        let later = IntegrityStats {
            checksum_failures: 5,
            quarantined_objects: 2,
            scrub_passes: 7,
            scrub_clean_passes: 4,
            degraded_entered: 1,
            degraded_recovered: 1,
            snapshots_expired: 2,
            degraded_partitions: 0,
            ..IntegrityStats::default()
        };
        let delta = later.delta_since(earlier);
        assert_eq!(delta.checksum_failures, 3);
        assert_eq!(delta.quarantined_objects, 1);
        assert_eq!(delta.scrub_passes, 4);
        assert_eq!(delta.scrub_clean_passes, 4);
        assert_eq!(delta.snapshots_expired, 2);
        // The gauge keeps the later value, not the difference.
        assert_eq!(delta.degraded_partitions, 0);

        let merged = earlier.merged(later);
        assert_eq!(merged.checksum_failures, 7);
        assert_eq!(merged.scrub_passes, 10);
        assert_eq!(merged.degraded_partitions, 1);
    }

    #[test]
    fn partition_health_defaults_healthy() {
        assert_eq!(PartitionHealth::default(), PartitionHealth::Healthy);
        assert_ne!(PartitionHealth::Degraded, PartitionHealth::Healthy);
    }

    #[test]
    fn frontend_stats_width_and_delta() {
        let mut stats = FrontendStats::default();
        assert_eq!(stats.mean_coalesce_width(), 0.0);
        stats.coalesced_groups = 4;
        stats.coalesced_entries = 10;
        assert!((stats.mean_coalesce_width() - 2.5).abs() < 1e-9);
        let mut later = stats;
        later.submitted = 30;
        later.completed = 28;
        later.rejected = 2;
        later.wakeups = 5;
        later.queue_depth = 3;
        later.max_queue_depth = 9;
        later.max_total_queue_depth = 14;
        later.outstanding_tickets = 4;
        later.max_outstanding_tickets = 21;
        let delta = later.delta_since(stats);
        assert_eq!(delta.submitted, 30);
        assert_eq!(delta.coalesced_groups, 0);
        // Gauges report the later snapshot, not a difference.
        assert_eq!(delta.queue_depth, 3);
        assert_eq!(delta.max_queue_depth, 9);
        assert_eq!(delta.max_total_queue_depth, 14);
        assert_eq!(delta.outstanding_tickets, 4);
        assert_eq!(delta.max_outstanding_tickets, 21);
    }

    #[test]
    fn net_stats_delta_keeps_gauges() {
        let earlier = NetStats {
            connections_accepted: 2,
            frames_received: 100,
            frames_sent: 90,
            bytes_received: 4000,
            in_flight: 10,
            max_in_flight: 12,
            ..NetStats::default()
        };
        let later = NetStats {
            connections_accepted: 3,
            connections_closed: 1,
            frames_received: 250,
            frames_sent: 240,
            bytes_received: 9000,
            bytes_sent: 5000,
            protocol_errors: 1,
            backpressure_rejections: 7,
            shutdown_refusals: 2,
            in_flight: 4,
            max_in_flight: 12,
            max_conn_in_flight: 6,
        };
        let delta = later.delta_since(earlier);
        assert_eq!(delta.connections_accepted, 1);
        assert_eq!(delta.frames_received, 150);
        assert_eq!(delta.bytes_received, 5000);
        assert_eq!(delta.backpressure_rejections, 7);
        // Gauges report the later snapshot, not a difference.
        assert_eq!(delta.in_flight, 4);
        assert_eq!(delta.max_in_flight, 12);
        assert_eq!(delta.max_conn_in_flight, 6);
    }

    #[test]
    fn tier_io_merge_and_delta() {
        let a = TierIo {
            bytes_read: 10,
            bytes_written: 20,
            reads: 1,
            writes: 2,
        };
        let b = TierIo {
            bytes_read: 5,
            bytes_written: 7,
            reads: 3,
            writes: 4,
        };
        let m = a.merged(b);
        assert_eq!(m.bytes_read, 15);
        assert_eq!(m.writes, 6);
        let d = m.delta_since(a);
        assert_eq!(d, b);
    }

    #[test]
    fn fast_read_ratio_handles_zero_and_mixed() {
        let mut stats = EngineStats::default();
        assert_eq!(stats.fast_read_ratio(), 1.0);
        stats.reads_from_nvm = 3;
        stats.reads_from_flash = 1;
        assert!((stats.fast_read_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn write_amplification() {
        let mut stats = EngineStats::default();
        assert_eq!(stats.flash_write_amplification(), 0.0);
        stats.user_bytes_written = 100;
        stats.flash_io.bytes_written = 450;
        assert!((stats.flash_write_amplification() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn delta_since_isolates_window() {
        let mut earlier = EngineStats {
            reads_from_flash: 10,
            ..EngineStats::default()
        };
        earlier.compaction.jobs = 2;
        earlier.reads_per_level[1] = 4;
        let mut later = earlier;
        later.reads_from_flash = 25;
        later.compaction.jobs = 5;
        later.compaction.total_time = Nanos::from_micros(10);
        later.reads_per_level[1] = 9;
        later.compaction.overlap_time = Nanos::from_micros(4);
        later.compaction.backpressure_stalls = 2;
        later.compaction.queue_depth = 3;
        later.compaction.max_queue_depth = 7;
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.reads_from_flash, 15);
        assert_eq!(delta.compaction.jobs, 3);
        assert_eq!(delta.reads_per_level[1], 5);
        assert_eq!(delta.compaction.overlap_time, Nanos::from_micros(4));
        assert_eq!(delta.compaction.backpressure_stalls, 2);
        // Gauges report the later snapshot, not a difference.
        assert_eq!(delta.compaction.queue_depth, 3);
        assert_eq!(delta.compaction.max_queue_depth, 7);
    }
}
