//! Key representation.

use std::borrow::Borrow;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A key in the database.
///
/// Keys are arbitrary byte strings ordered lexicographically. Workload
/// generators produce fixed-width 8-byte big-endian keys (via
/// [`Key::from_id`]) so lexicographic order coincides with numeric order,
/// which lets the compaction bucket map (the `prism-compaction` crate) place keys
/// into fixed-width key-id buckets exactly as the paper's implementation
/// does for its 64 K-key buckets.
///
/// # Example
///
/// ```
/// use prism_types::Key;
///
/// let a = Key::from_id(10);
/// let b = Key::from_id(200);
/// assert!(a < b);
/// assert_eq!(b.id(), 200);
/// let named = Key::from_bytes(b"user12345".to_vec());
/// assert_eq!(named.as_bytes(), b"user12345");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key(Vec<u8>);

impl Key {
    /// Build a fixed-width 8-byte key from a numeric key id.
    ///
    /// Lexicographic comparison of keys built this way matches numeric
    /// comparison of the ids.
    pub fn from_id(id: u64) -> Self {
        Key(id.to_be_bytes().to_vec())
    }

    /// Build a key from raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Key(bytes)
    }

    /// The numeric key id: the first 8 bytes interpreted as a big-endian
    /// integer (shorter keys are zero-padded on the right).
    ///
    /// For keys produced by [`Key::from_id`] this is the exact inverse; for
    /// arbitrary byte keys it is an order-preserving prefix projection used
    /// only for bucketing approximations.
    pub fn id(&self) -> u64 {
        let mut buf = [0u8; 8];
        let n = self.0.len().min(8);
        buf[..n].copy_from_slice(&self.0[..n]);
        u64::from_be_bytes(buf)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the key in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the key is empty (the minimum possible key).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The smallest possible key.
    pub fn min() -> Self {
        Key(Vec::new())
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.len() == 8 {
            write!(f, "Key({})", self.id())
        } else {
            write!(f, "Key({:02x?})", self.0)
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.len() == 8 {
            write!(f, "{}", self.id())
        } else {
            write!(f, "{:02x?}", self.0)
        }
    }
}

impl From<u64> for Key {
    fn from(id: u64) -> Self {
        Key::from_id(id)
    }
}

impl From<Vec<u8>> for Key {
    fn from(bytes: Vec<u8>) -> Self {
        Key::from_bytes(bytes)
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Key {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trips() {
        for id in [0u64, 1, 42, u64::MAX, 1 << 40] {
            assert_eq!(Key::from_id(id).id(), id);
        }
    }

    #[test]
    fn lexicographic_order_matches_numeric_order() {
        let mut ids = vec![5u64, 0, 100, 99, u64::MAX, 1 << 33];
        let mut keys: Vec<Key> = ids.iter().copied().map(Key::from_id).collect();
        ids.sort_unstable();
        keys.sort();
        let sorted_ids: Vec<u64> = keys.iter().map(Key::id).collect();
        assert_eq!(sorted_ids, ids);
    }

    #[test]
    fn short_keys_pad_for_id() {
        let key = Key::from_bytes(vec![0x01]);
        assert_eq!(key.id(), 0x0100_0000_0000_0000);
    }

    #[test]
    fn min_key_sorts_first() {
        assert!(Key::min() < Key::from_id(0));
        assert!(Key::min().is_empty());
    }

    #[test]
    fn conversions_and_as_ref() {
        let k: Key = 7u64.into();
        assert_eq!(k.id(), 7);
        let k2: Key = vec![1, 2, 3].into();
        assert_eq!(k2.as_ref(), &[1, 2, 3]);
        assert_eq!(k2.len(), 3);
    }

    #[test]
    fn debug_formats_numeric_keys_compactly() {
        assert_eq!(format!("{:?}", Key::from_id(9)), "Key(9)");
        assert_eq!(format!("{}", Key::from_id(9)), "9");
    }
}
