//! Operation descriptions and operation results.

use serde::{Deserialize, Serialize};

use crate::{Key, Nanos, Value};

/// Where a read was ultimately served from.
///
/// The paper's Figure 2b breaks RocksDB reads down by source (memtable,
/// block cache, LSM level) and Figure 14a compares read-latency CDFs, both
/// of which need per-read source attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadSource {
    /// Served from DRAM (engine object cache, memtable, or block cache).
    Dram,
    /// Served from the fast NVM tier (slab file or NVM-resident LSM level).
    Nvm,
    /// Served from the slow flash tier (SST data block read from flash).
    Flash,
    /// The key was not found on any tier.
    NotFound,
}

impl ReadSource {
    /// True if the read had to touch the slow flash tier.
    pub fn is_flash(self) -> bool {
        matches!(self, ReadSource::Flash)
    }
}

/// Result of a point lookup.
#[derive(Debug, Clone)]
pub struct Lookup {
    /// The value, if the key exists.
    pub value: Option<Value>,
    /// Simulated service time of the lookup.
    pub latency: Nanos,
    /// Which tier served the read.
    pub source: ReadSource,
}

impl Lookup {
    /// A lookup that found nothing after spending `latency`.
    pub fn miss(latency: Nanos) -> Self {
        Lookup {
            value: None,
            latency,
            source: ReadSource::NotFound,
        }
    }

    /// True if a value was found.
    pub fn found(&self) -> bool {
        self.value.is_some()
    }
}

/// Result of a range scan.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// The key-value pairs, in ascending key order.
    pub entries: Vec<(Key, Value)>,
    /// Simulated service time of the whole scan.
    pub latency: Nanos,
}

/// The kind of a client operation, used for per-type latency breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Point read.
    Read,
    /// Blind update of an existing key.
    Update,
    /// Insert of a new key.
    Insert,
    /// Read-modify-write (YCSB-F).
    ReadModifyWrite,
    /// Range scan (YCSB-E).
    Scan,
    /// Delete.
    Delete,
}

impl OpKind {
    /// True for operations that write to the database.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            OpKind::Update | OpKind::Insert | OpKind::ReadModifyWrite | OpKind::Delete
        )
    }
}

/// A single client operation produced by a workload generator.
#[derive(Debug, Clone)]
pub enum Op {
    /// Point read of a key.
    Read(Key),
    /// Update an existing key with a new value.
    Update(Key, Value),
    /// Insert a fresh key.
    Insert(Key, Value),
    /// Read the key then write back a modified value of the same size.
    ReadModifyWrite(Key, Value),
    /// Scan `count` keys starting at the given key.
    Scan(Key, usize),
    /// Delete a key.
    Delete(Key),
}

impl Op {
    /// The kind of this operation.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Read(_) => OpKind::Read,
            Op::Update(_, _) => OpKind::Update,
            Op::Insert(_, _) => OpKind::Insert,
            Op::ReadModifyWrite(_, _) => OpKind::ReadModifyWrite,
            Op::Scan(_, _) => OpKind::Scan,
            Op::Delete(_) => OpKind::Delete,
        }
    }

    /// The key this operation targets.
    pub fn key(&self) -> &Key {
        match self {
            Op::Read(k)
            | Op::Update(k, _)
            | Op::Insert(k, _)
            | Op::ReadModifyWrite(k, _)
            | Op::Scan(k, _)
            | Op::Delete(k) => k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_classification() {
        assert!(!OpKind::Read.is_write());
        assert!(!OpKind::Scan.is_write());
        assert!(OpKind::Update.is_write());
        assert!(OpKind::Insert.is_write());
        assert!(OpKind::ReadModifyWrite.is_write());
        assert!(OpKind::Delete.is_write());
    }

    #[test]
    fn op_accessors() {
        let key = Key::from_id(3);
        let ops = vec![
            Op::Read(key.clone()),
            Op::Update(key.clone(), Value::filled(8, 0)),
            Op::Insert(key.clone(), Value::filled(8, 0)),
            Op::ReadModifyWrite(key.clone(), Value::filled(8, 0)),
            Op::Scan(key.clone(), 10),
            Op::Delete(key.clone()),
        ];
        let kinds: Vec<OpKind> = ops.iter().map(Op::kind).collect();
        assert_eq!(
            kinds,
            vec![
                OpKind::Read,
                OpKind::Update,
                OpKind::Insert,
                OpKind::ReadModifyWrite,
                OpKind::Scan,
                OpKind::Delete
            ]
        );
        for op in &ops {
            assert_eq!(op.key(), &key);
        }
    }

    #[test]
    fn lookup_helpers() {
        let miss = Lookup::miss(Nanos::from_micros(1));
        assert!(!miss.found());
        assert_eq!(miss.source, ReadSource::NotFound);
        assert!(ReadSource::Flash.is_flash());
        assert!(!ReadSource::Nvm.is_flash());
    }
}
