//! Error handling shared across the workspace.

use std::fmt;

/// Convenience result alias used by all public PrismDB APIs.
pub type Result<T> = std::result::Result<T, PrismError>;

/// Errors returned by PrismDB, its substrates, and the baseline engines.
///
/// # Example
///
/// ```
/// use prism_types::PrismError;
///
/// let err = PrismError::CapacityExceeded { tier: "nvm", needed: 4096, available: 1024 };
/// assert!(err.to_string().contains("nvm"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PrismError {
    /// A tier ran out of space and compaction could not reclaim enough.
    CapacityExceeded {
        /// Which tier ("nvm", "flash", "dram", "wal") rejected the write.
        tier: &'static str,
        /// Bytes the operation needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// Persistent state failed an integrity check (bad header, truncated
    /// slab slot, manifest referencing a missing file, ...).
    Corruption(String),
    /// The caller supplied an invalid configuration value.
    InvalidConfig(String),
    /// An object exceeded the maximum supported size (the paper's PrismDB
    /// supports objects up to 4 KB so they fit in one atomically-written
    /// page).
    ObjectTooLarge {
        /// Size of the offending object in bytes.
        size: usize,
        /// Maximum size supported by the engine.
        max: usize,
    },
    /// A simulated I/O failure injected by tests.
    Io(String),
    /// A bounded submission queue rejected the request (`try_submit`
    /// back-pressure): the partition's queue is full, or the engine's
    /// watermark pressure hint shrank its effective capacity.
    Backpressure {
        /// Partition whose queue rejected the request.
        partition: usize,
        /// Queue depth observed at rejection time.
        depth: usize,
    },
    /// The submission front-end is shutting down; the request was not
    /// enqueued (pending requests are drained, stragglers get this).
    ShuttingDown,
    /// Optimistic transaction validation failed at commit: a key in the
    /// transaction's read set was written (or deleted) after the
    /// transaction's snapshot was pinned. The transaction was not applied;
    /// the caller should retry against a fresh snapshot.
    TxnConflict {
        /// Id of the first read-set key that failed validation.
        key: u64,
    },
    /// The engine does not implement an optional capability (snapshots,
    /// transactions, ...) that the caller requested.
    Unsupported(&'static str),
    /// A wire-protocol violation: an oversized or malformed frame, an
    /// unknown opcode, or a payload that does not match its opcode. The
    /// offending frame is discarded; framing recovers at the next
    /// length-prefix boundary when the prefix itself was sound.
    Protocol(String),
    /// The network peer went away (connection reset, EOF mid-frame, or a
    /// response written into a closed transport). Requests already
    /// submitted keep executing server-side; their acks are discarded.
    Disconnected,
    /// The partition crossed its corruption threshold and is serving in
    /// read-only degraded mode: reads and scans still work, writes are
    /// refused until a background scrub pass comes back clean and re-arms
    /// the partition. Retryable — resubmit after the scrub.
    Degraded {
        /// Partition refusing writes.
        partition: usize,
    },
    /// A pinned snapshot was aborted by the engine before the caller
    /// released it — it out-lived `Options::max_pin_age_ops` commits or
    /// its preserved history exceeded `Options::max_history_bytes` — and
    /// its superseded versions were garbage collected. Reads through the
    /// snapshot can no longer be answered consistently; pin a fresh one.
    SnapshotExpired,
}

impl PrismError {
    /// True for errors a client may transparently retry: the request was
    /// refused without side effects and a later identical submission can
    /// succeed (queue drained, scrub re-armed the partition, ...).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PrismError::Backpressure { .. } | PrismError::Degraded { .. }
        )
    }
}

impl fmt::Display for PrismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrismError::CapacityExceeded {
                tier,
                needed,
                available,
            } => write!(
                f,
                "capacity exceeded on {tier}: needed {needed} bytes, {available} available"
            ),
            PrismError::Corruption(msg) => write!(f, "corruption detected: {msg}"),
            PrismError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PrismError::ObjectTooLarge { size, max } => {
                write!(f, "object of {size} bytes exceeds maximum of {max} bytes")
            }
            PrismError::Io(msg) => write!(f, "io error: {msg}"),
            PrismError::Backpressure { partition, depth } => write!(
                f,
                "back-pressure: partition {partition} queue is full ({depth} requests pending)"
            ),
            PrismError::ShuttingDown => write!(f, "submission front-end is shutting down"),
            PrismError::TxnConflict { key } => write!(
                f,
                "transaction conflict: key {key} changed after the snapshot was pinned"
            ),
            PrismError::Unsupported(what) => write!(f, "unsupported capability: {what}"),
            PrismError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            PrismError::Disconnected => write!(f, "peer disconnected"),
            PrismError::Degraded { partition } => write!(
                f,
                "partition {partition} is degraded (read-only until a clean scrub pass)"
            ),
            PrismError::SnapshotExpired => write!(
                f,
                "snapshot expired: its pinned history was garbage collected"
            ),
        }
    }
}

impl std::error::Error for PrismError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(PrismError, &str)> = vec![
            (
                PrismError::CapacityExceeded {
                    tier: "flash",
                    needed: 10,
                    available: 2,
                },
                "flash",
            ),
            (PrismError::Corruption("bad slot".into()), "bad slot"),
            (
                PrismError::InvalidConfig("zero partitions".into()),
                "zero partitions",
            ),
            (
                PrismError::ObjectTooLarge {
                    size: 9000,
                    max: 4096,
                },
                "9000",
            ),
            (PrismError::Io("device offline".into()), "device offline"),
            (
                PrismError::Backpressure {
                    partition: 3,
                    depth: 64,
                },
                "partition 3",
            ),
            (PrismError::ShuttingDown, "shutting down"),
            (PrismError::TxnConflict { key: 17 }, "key 17"),
            (PrismError::Unsupported("snapshots"), "snapshots"),
            (
                PrismError::Protocol("frame of 99 bytes truncated".into()),
                "frame of 99 bytes",
            ),
            (PrismError::Disconnected, "disconnected"),
            (PrismError::Degraded { partition: 2 }, "partition 2"),
            (PrismError::SnapshotExpired, "snapshot expired"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should contain {needle}");
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<PrismError>();
    }

    #[test]
    fn only_backpressure_and_degraded_are_retryable() {
        assert!(PrismError::Backpressure {
            partition: 0,
            depth: 1
        }
        .is_retryable());
        assert!(PrismError::Degraded { partition: 0 }.is_retryable());
        assert!(!PrismError::Corruption("x".into()).is_retryable());
        assert!(!PrismError::ShuttingDown.is_retryable());
        assert!(!PrismError::SnapshotExpired.is_retryable());
    }
}
