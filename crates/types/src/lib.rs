//! Common types shared by every crate in the PrismDB reproduction.
//!
//! This crate defines the vocabulary of the system: [`Key`] and [`Value`]
//! types, simulated-time units ([`Nanos`]), the [`KvStore`] trait implemented
//! by PrismDB and by every baseline engine, its thread-safe counterpart
//! [`ConcurrentKvStore`] (plus the [`SharedKv`] / [`MutexKv`] adapters and
//! the [`MemStore`] reference oracle), the snapshot / optimistic
//! transaction layer ([`SnapshotId`], [`Transaction`]), operation
//! descriptions consumed by the benchmark harness, the futures-free
//! [`Completion`] / [`Ticket`] primitive used by the async submission
//! front-end (with its [`FrontendStats`]), and the error type used across
//! the workspace.
//!
//! # Example
//!
//! ```
//! use prism_types::{Key, Value, Nanos};
//!
//! let key = Key::from_id(42);
//! assert_eq!(key.id(), 42);
//! let value = Value::filled(16, 0xAB);
//! assert_eq!(value.len(), 16);
//! let t = Nanos::from_micros(6) + Nanos::from_micros(4);
//! assert_eq!(t.as_micros(), 10);
//! ```

mod batch;
pub mod checksum;
mod completion;
mod concurrent;
mod error;
mod key;
mod mem;
mod ops;
mod stats;
mod time;
mod txn;
mod value;

pub use batch::{BatchOp, WriteBatch};
pub use completion::{completion_pair, completion_pair_gauged, Completion, Ticket, TicketGauge};
pub use concurrent::{ConcurrentKvStore, MutexKv, SharedKv};
pub use error::{PrismError, Result};
pub use key::Key;
pub use mem::MemStore;
pub use ops::{Lookup, Op, OpKind, ReadSource, ScanResult};
pub use stats::{
    CompactionStats, EngineStats, FrontendStats, IntegrityStats, NetStats, PartitionHealth, TierIo,
    TxnStats,
};
pub use time::Nanos;
pub use txn::{run_transaction, SnapshotId, Transaction};
pub use value::Value;

/// A storage engine that the benchmark harness can drive.
///
/// Both PrismDB (`prism-db`) and the LSM baseline family (`prism-lsm`)
/// implement this trait, so every experiment in the paper can be expressed
/// once and run against any engine.
///
/// All methods take `&mut self`: engines are driven by a single benchmark
/// thread and perform their own internal partitioning / background-work
/// accounting in simulated (virtual) time. Each operation returns how much
/// simulated time it consumed so the harness can build latency
/// distributions without real sleeps.
///
/// Engines that support multi-threaded clients additionally implement
/// [`ConcurrentKvStore`], the `&self` counterpart of this trait; the
/// [`SharedKv`] adapter turns any such engine back into a per-thread
/// `KvStore` handle so single-threaded drivers keep working.
pub trait KvStore {
    /// Insert or update `key` with `value`.
    ///
    /// Returns the simulated service time of the operation, including any
    /// write-stall the engine imposed (e.g. while waiting for a compaction
    /// to free space on the fast tier).
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::CapacityExceeded`] if the engine cannot free
    /// enough space on any tier to absorb the write.
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos>;

    /// Look up the most recent value of `key`.
    ///
    /// The returned [`Lookup`] records where the read was served from
    /// (DRAM, NVM or flash) in addition to the value and service time.
    ///
    /// # Errors
    ///
    /// Returns an error only on internal corruption; a missing key is
    /// reported as `Lookup { value: None, .. }`.
    fn get(&mut self, key: &Key) -> Result<Lookup>;

    /// Delete `key`. Deleting a non-existent key is not an error.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::CapacityExceeded`] if writing a tombstone to
    /// the fast tier is impossible.
    fn delete(&mut self, key: &Key) -> Result<Nanos>;

    /// Return up to `count` key-value pairs with keys `>= start`, in key
    /// order.
    ///
    /// # Errors
    ///
    /// Returns an error only on internal corruption.
    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult>;

    /// Apply a [`WriteBatch`] — equivalent to applying its entries front
    /// to back (when one key appears several times the last entry wins),
    /// but engines with a real batched path amortise per-operation
    /// overhead across the group. Returns the total simulated service
    /// time of the batch.
    ///
    /// The default implementation simply loops over the entries, so every
    /// engine supports the API; it makes no atomicity promise. Engines
    /// that override it document their own atomicity contract (PrismDB:
    /// atomic across all touched partitions, via its commit log).
    ///
    /// # Errors
    ///
    /// Returns the first per-entry error ([`PrismError::CapacityExceeded`]
    /// etc.); entries already applied by the default fallback stay
    /// applied.
    fn apply_batch(&mut self, batch: WriteBatch) -> Result<Nanos> {
        let mut total = Nanos::ZERO;
        for op in batch {
            total += match op {
                BatchOp::Put(key, value) => self.put(key, value)?,
                BatchOp::Delete(key) => self.delete(&key)?,
            };
        }
        Ok(total)
    }

    /// Snapshot of cumulative engine statistics (tier I/O, compaction work,
    /// read-source histogram).
    fn stats(&self) -> EngineStats;

    /// Total simulated wall-clock time elapsed so far: the maximum over all
    /// partitions of foreground and background completion time.
    fn elapsed(&self) -> Nanos;

    /// Short human-readable engine name used in experiment tables.
    fn engine_name(&self) -> &str;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn kvstore_trait_is_object_safe() {
        let mut store: Box<dyn KvStore> = Box::new(MemStore::default());
        store.put(Key::from_id(1), Value::filled(8, 1)).unwrap();
        let got = store.get(&Key::from_id(1)).unwrap();
        assert_eq!(got.value.unwrap().len(), 8);
        assert!(store.elapsed() > Nanos::ZERO);
    }

    #[test]
    fn kvstore_scan_orders_keys() {
        let mut store = MemStore::default();
        for id in [5u64, 1, 9, 3] {
            store
                .put(Key::from_id(id), Value::filled(4, id as u8))
                .unwrap();
        }
        let res = store.scan(&Key::from_id(2), 10).unwrap();
        let ids: Vec<u64> = res.entries.iter().map(|(k, _)| k.id()).collect();
        assert_eq!(ids, vec![3, 5, 9]);
    }
}
