//! A minimal futures-free completion primitive.
//!
//! An async submission front-end hands the client a [`Ticket`] when a
//! request is enqueued and keeps the matching [`Completion`]; whichever
//! executor thread eventually services the request calls
//! [`Completion::complete`], which wakes the ticket holder if it is
//! blocked in [`Ticket::wait`]. There is no runtime and no `Future`:
//! waiting is plain [`std::thread::park`], waking is
//! [`std::thread::Thread::unpark`], and non-blocking consumers use
//! [`Ticket::poll`] to multiplex many outstanding requests on one OS
//! thread.
//!
//! # Example
//!
//! ```
//! use prism_types::completion_pair;
//!
//! let (completion, mut ticket) = completion_pair::<u32>();
//! assert!(ticket.poll().is_none());
//! std::thread::spawn(move || completion.complete(7));
//! assert_eq!(ticket.wait(), 7);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

/// A shared gauge of outstanding (created but not yet completed or
/// abandoned) completions, for asserting that a producer never strands a
/// request. Pass it to [`completion_pair_gauged`]; the count rises when a
/// pair is created and falls when its [`Completion`] completes *or* is
/// dropped uncompleted, so after a producer has fully drained — even via
/// error paths — the gauge must read zero.
///
/// Cloning shares the underlying counter.
///
/// # Example
///
/// ```
/// use prism_types::{completion_pair_gauged, TicketGauge};
///
/// let gauge = TicketGauge::new();
/// let (completion, ticket) = completion_pair_gauged::<u8>(&gauge);
/// assert_eq!(gauge.outstanding(), 1);
/// completion.complete(3);
/// assert_eq!(gauge.outstanding(), 0);
/// assert_eq!(ticket.wait(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TicketGauge {
    outstanding: Arc<AtomicU64>,
    high_water: Arc<AtomicU64>,
}

impl TicketGauge {
    /// A fresh gauge reading zero.
    pub fn new() -> Self {
        TicketGauge::default()
    }

    /// Number of gauged completions created but not yet completed or
    /// abandoned.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Highest outstanding count ever observed (a cumulative high-water
    /// mark): the peak number of requests simultaneously in flight, even
    /// after a drain has returned [`TicketGauge::outstanding`] to zero.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Acquire)
    }

    fn incr(&self) {
        let now = self.outstanding.fetch_add(1, Ordering::AcqRel) + 1;
        self.high_water.fetch_max(now, Ordering::AcqRel);
    }

    fn decr(&self) {
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

struct State<T> {
    value: Option<T>,
    /// The producer side was dropped without completing; waiting any
    /// longer would hang forever.
    abandoned: bool,
    /// The thread currently parked in [`Ticket::wait`], if any.
    waiter: Option<Thread>,
}

struct Inner<T> {
    state: Mutex<State<T>>,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// The producer half: completes the request exactly once.
///
/// Dropping a `Completion` without calling [`Completion::complete`] marks
/// the request abandoned, so a parked [`Ticket::wait`] panics instead of
/// hanging forever (an executor that panics mid-request must not strand
/// its clients silently).
pub struct Completion<T> {
    inner: Arc<Inner<T>>,
    completed: bool,
    gauge: Option<TicketGauge>,
}

/// The consumer half: observe the result by polling or by blocking.
pub struct Ticket<T> {
    inner: Arc<Inner<T>>,
}

/// Create a connected [`Completion`] / [`Ticket`] pair.
pub fn completion_pair<T>() -> (Completion<T>, Ticket<T>) {
    pair_with_gauge(None)
}

/// [`completion_pair`] counted on `gauge`: the gauge rises now and falls
/// when the [`Completion`] completes or is dropped uncompleted, so a
/// producer (a submission front-end, a network server) can prove it never
/// stranded a request by asserting the gauge reads zero after a drain.
pub fn completion_pair_gauged<T>(gauge: &TicketGauge) -> (Completion<T>, Ticket<T>) {
    pair_with_gauge(Some(gauge.clone()))
}

fn pair_with_gauge<T>(gauge: Option<TicketGauge>) -> (Completion<T>, Ticket<T>) {
    if let Some(gauge) = &gauge {
        gauge.incr();
    }
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            value: None,
            abandoned: false,
            waiter: None,
        }),
    });
    (
        Completion {
            inner: Arc::clone(&inner),
            completed: false,
            gauge,
        },
        Ticket { inner },
    )
}

impl<T> Completion<T> {
    /// Deliver the result and wake the ticket holder if it is parked.
    pub fn complete(mut self, value: T) {
        self.completed = true;
        // Decrement before publishing the value: anything downstream of
        // the result (a polled ticket, a wire response built from it)
        // must observe the gauge already dropped, so a drain check can
        // read zero the instant the last response is visible.
        if let Some(gauge) = self.gauge.take() {
            gauge.decr();
        }
        let waiter = {
            let mut state = self.inner.lock();
            state.value = Some(value);
            state.waiter.take()
        };
        if let Some(thread) = waiter {
            thread.unpark();
        }
    }
}

impl<T> Drop for Completion<T> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // An abandoned request is no longer outstanding either — the
        // gauge tracks "could still complete", not "completed cleanly".
        // As in `complete`, decrement before publishing the abandonment.
        if let Some(gauge) = self.gauge.take() {
            gauge.decr();
        }
        let waiter = {
            let mut state = self.inner.lock();
            state.abandoned = true;
            state.waiter.take()
        };
        if let Some(thread) = waiter {
            thread.unpark();
        }
    }
}

impl<T> Ticket<T> {
    /// True once a result is available (and not yet taken by
    /// [`Ticket::poll`]).
    pub fn is_done(&self) -> bool {
        self.inner.lock().value.is_some()
    }

    /// Take the result if it is available; `None` if the request is still
    /// in flight. Never blocks, so one OS thread can poll hundreds of
    /// outstanding tickets.
    ///
    /// # Panics
    ///
    /// Panics if the producer dropped its [`Completion`] without
    /// completing: to a polling multiplexer an abandoned request would
    /// otherwise look in-flight forever, turning the producer's crash
    /// into a silent hang of the consumer loop.
    pub fn poll(&mut self) -> Option<T> {
        let mut state = self.inner.lock();
        let value = state.value.take();
        assert!(
            value.is_some() || !state.abandoned,
            "completion abandoned: the executor dropped the request \
             without completing it"
        );
        value
    }

    /// Block (park) until the result is available and return it.
    ///
    /// # Panics
    ///
    /// Panics if the producer dropped its [`Completion`] without
    /// completing — waiting would otherwise hang forever.
    pub fn wait(self) -> T {
        loop {
            {
                let mut state = self.inner.lock();
                if let Some(value) = state.value.take() {
                    return value;
                }
                assert!(
                    !state.abandoned,
                    "completion abandoned: the executor dropped the request \
                     without completing it"
                );
                state.waiter = Some(std::thread::current());
            }
            // A stale unpark from an earlier ticket on this thread can wake
            // us spuriously; the loop re-checks the state either way.
            std::thread::park();
        }
    }
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("done", &self.is_done())
            .finish()
    }
}

impl<T> std::fmt::Debug for Completion<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("completed", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_before_wait_returns_immediately() {
        let (completion, ticket) = completion_pair();
        completion.complete(41);
        assert!(ticket.is_done());
        assert_eq!(ticket.wait(), 41);
    }

    #[test]
    fn poll_is_non_blocking_and_takes_the_value_once() {
        let (completion, mut ticket) = completion_pair();
        assert!(ticket.poll().is_none());
        assert!(!ticket.is_done());
        completion.complete("done");
        assert_eq!(ticket.poll(), Some("done"));
        // The value is consumed; the ticket reports not-done afterwards.
        assert!(ticket.poll().is_none());
        assert!(!ticket.is_done());
    }

    #[test]
    fn wait_parks_until_a_racing_thread_completes() {
        let (completion, ticket) = completion_pair();
        let waiter = std::thread::spawn(move || ticket.wait());
        // Give the waiter a chance to park before completing.
        std::thread::sleep(std::time::Duration::from_millis(10));
        completion.complete(1234u64);
        assert_eq!(waiter.join().expect("waiter"), 1234);
    }

    #[test]
    fn many_tickets_multiplex_on_one_polling_thread() {
        let mut tickets = Vec::new();
        let mut completions = Vec::new();
        for i in 0..64u32 {
            let (completion, ticket) = completion_pair();
            completions.push((i, completion));
            tickets.push(ticket);
        }
        std::thread::spawn(move || {
            for (i, completion) in completions {
                completion.complete(i * 2);
            }
        });
        let mut got = vec![None; tickets.len()];
        while got.iter().any(Option::is_none) {
            for (i, ticket) in tickets.iter_mut().enumerate() {
                if got[i].is_none() {
                    got[i] = ticket.poll();
                }
            }
            std::thread::yield_now();
        }
        for (i, value) in got.into_iter().enumerate() {
            assert_eq!(value, Some(i as u32 * 2));
        }
    }

    #[test]
    #[should_panic(expected = "completion abandoned")]
    fn dropping_the_completion_panics_a_parked_waiter() {
        let (completion, ticket) = completion_pair::<u8>();
        drop(completion);
        ticket.wait();
    }

    #[test]
    #[should_panic(expected = "completion abandoned")]
    fn dropping_the_completion_panics_a_polling_consumer() {
        let (completion, mut ticket) = completion_pair::<u8>();
        drop(completion);
        ticket.poll();
    }

    #[test]
    fn gauge_tracks_high_water_across_drains() {
        let gauge = TicketGauge::new();
        let (a, ta) = completion_pair_gauged::<u8>(&gauge);
        let (b, tb) = completion_pair_gauged::<u8>(&gauge);
        assert_eq!(gauge.outstanding(), 2);
        assert_eq!(gauge.high_water(), 2);
        a.complete(1);
        drop(b); // abandonment also drains the gauge
        assert_eq!(gauge.outstanding(), 0);
        // The peak survives the drain.
        assert_eq!(gauge.high_water(), 2);
        let (c, tc) = completion_pair_gauged::<u8>(&gauge);
        assert_eq!(gauge.outstanding(), 1);
        assert_eq!(gauge.high_water(), 2);
        c.complete(3);
        assert_eq!(ta.wait(), 1);
        assert_eq!(tc.wait(), 3);
        drop(tb);
    }

    #[test]
    fn poll_after_completion_never_reports_abandonment() {
        // Completing consumes the producer; its later drop must not mark
        // the (already served) request abandoned.
        let (completion, mut ticket) = completion_pair::<u8>();
        completion.complete(9);
        assert_eq!(ticket.poll(), Some(9));
        assert!(ticket.poll().is_none());
    }
}
