//! CRC32 (IEEE 802.3 polynomial, the RocksDB/gzip flavour) for
//! end-to-end integrity: slab-slot headers, SST block and footer
//! checksums, and commit-log records all derive their checksums here so
//! every tier detects a flipped bit with the same primitive.
//!
//! Hand-rolled (table-driven, reflected 0xEDB88320) because the build
//! environment has no registry access; the algorithm matches the
//! canonical `crc32fast`/zlib output bit for bit, verified against
//! published test vectors in the unit tests below.

/// The reflected IEEE CRC32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC32 hasher for checksums spanning several fields
/// (key bytes, value bytes, a timestamp) without concatenating them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &byte in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Feed a little-endian `u64` (timestamps, sequence numbers).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Feed a little-endian `u32` (lengths, chained block checksums).
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// The finished checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(bytes);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published CRC32 test vectors (zlib / IEEE 802.3).
    #[test]
    fn matches_published_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut hasher = Crc32::new();
        hasher.update(b"123");
        hasher.update(b"45");
        hasher.update(b"6789");
        assert_eq!(hasher.finish(), crc32(b"123456789"));

        let mut fields = Crc32::new();
        fields.update(b"key");
        fields.update_u64(0xDEAD_BEEF_CAFE_F00D);
        fields.update_u32(42);
        let mut concat = b"key".to_vec();
        concat.extend_from_slice(&0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes());
        concat.extend_from_slice(&42u32.to_le_bytes());
        assert_eq!(fields.finish(), crc32(&concat));
    }

    /// Every single-bit flip in a message changes the checksum — the
    /// property the integrity layer leans on.
    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let base = b"prismdb integrity probe 0123456789".to_vec();
        let clean = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    clean,
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}
