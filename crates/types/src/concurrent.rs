//! Shared-reference (thread-safe) engine API and adapters.
//!
//! [`crate::KvStore`] takes `&mut self`: it models a single benchmark thread
//! driving an engine. Scaling past one thread needs an API that can be
//! called through a shared reference, so `Arc<Engine>` handles can be
//! cloned into many OS threads. [`ConcurrentKvStore`] is that API; engines
//! provide their own internal synchronisation (PrismDB locks each
//! partition separately, so operations on different partitions proceed in
//! parallel).
//!
//! Two adapters bridge the traits in both directions:
//!
//! * [`SharedKv`] wraps an `Arc<impl ConcurrentKvStore>` and implements
//!   [`crate::KvStore`], so existing single-threaded drivers (the benchmark
//!   runner, tests) can drive a shared engine unchanged — one `SharedKv`
//!   handle per thread.
//! * [`MutexKv`] wraps any `impl KvStore` in one global mutex and
//!   implements [`ConcurrentKvStore`]. It is the baseline adapter: safe
//!   everywhere, parallel nowhere (a single shard), which is exactly the
//!   foil the scalability experiments compare sharded engines against.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::{
    BatchOp, EngineStats, Key, KvStore, Lookup, Nanos, PartitionHealth, PrismError, Result,
    ScanResult, SnapshotId, Value, WriteBatch,
};

/// A storage engine safe to drive from many threads through `&self`.
///
/// The operation contract (semantics, error cases, returned simulated
/// latencies) is identical to [`crate::KvStore`]; only the receiver
/// changes. Implementations must be internally synchronised: any number of
/// threads may call any mix of methods concurrently.
///
/// The two `shard_*` methods expose the engine's parallelism structure so
/// harnesses can model queueing per shard: operations on the same shard
/// serialise, operations on different shards proceed in parallel. A
/// coarse-grained engine (one global lock) reports a single shard.
pub trait ConcurrentKvStore: Send + Sync {
    /// Insert or update `key` with `value`. See [`crate::KvStore::put`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::PrismError::CapacityExceeded`] if no tier can
    /// absorb the write.
    fn put(&self, key: Key, value: Value) -> Result<Nanos>;

    /// Look up the most recent value of `key`. See [`crate::KvStore::get`].
    ///
    /// # Errors
    ///
    /// Returns an error only on internal corruption.
    fn get(&self, key: &Key) -> Result<Lookup>;

    /// Delete `key`. See [`crate::KvStore::delete`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::PrismError::CapacityExceeded`] if writing a
    /// tombstone is impossible.
    fn delete(&self, key: &Key) -> Result<Nanos>;

    /// Return up to `count` pairs with keys `>= start`, in key order. See
    /// [`crate::KvStore::scan`].
    ///
    /// # Errors
    ///
    /// Returns an error only on internal corruption.
    fn scan(&self, start: &Key, count: usize) -> Result<ScanResult>;

    /// Apply a [`WriteBatch`] as a group. See [`crate::KvStore::apply_batch`]
    /// for the semantics (front-to-back equivalence, last entry per key
    /// wins). The default implementation loops over the entries per-op and
    /// makes no atomicity promise; engines with a real batched path
    /// (PrismDB) override it to install the batch atomically — each
    /// shard's write lock is taken once, and a multi-shard batch is
    /// protected by a commit-log record so crash recovery never exposes a
    /// torn batch.
    ///
    /// # Errors
    ///
    /// Returns the first per-entry error; with the default fallback,
    /// entries already applied stay applied.
    fn apply_batch(&self, batch: WriteBatch) -> Result<Nanos> {
        let mut total = Nanos::ZERO;
        for op in batch {
            total += match op {
                BatchOp::Put(key, value) => self.put(key, value)?,
                BatchOp::Delete(key) => self.delete(&key)?,
            };
        }
        Ok(total)
    }

    /// Snapshot of cumulative engine statistics.
    fn stats(&self) -> EngineStats;

    /// Total simulated time elapsed so far.
    fn elapsed(&self) -> Nanos;

    /// Short human-readable engine name.
    fn engine_name(&self) -> &str;

    /// Number of independent shards (lock domains) inside the engine.
    fn shard_count(&self) -> usize {
        1
    }

    /// The shard that serialises operations on `key` (in `0..shard_count()`).
    fn shard_of(&self, _key: &Key) -> usize {
        0
    }

    /// A conservative superset of the shards a scan starting at `start`
    /// may lock simultaneously. Harness queueing models charge a scan's
    /// latency to every shard in this range, since time spent holding
    /// several shard locks cannot be overlapped with work on any of them.
    /// The default assumes a scan may touch every shard; range-partitioned
    /// engines can narrow it to the tail starting at the routed shard.
    fn shards_for_scan(&self, _start: &Key) -> std::ops::Range<usize> {
        0..self.shard_count()
    }

    /// Whether point reads (and scans) on the *same* shard can proceed in
    /// parallel with each other. Engines that protect each shard with a
    /// reader-writer lock return `true`; engines that serialise every
    /// operation on a shard (a plain mutex per shard, or one global lock)
    /// keep the default `false`. Harness queueing models use this to decide
    /// whether read latencies count towards a shard's serial work.
    fn concurrent_reads(&self) -> bool {
        false
    }

    /// Cumulative simulated time consumed by each virtual background
    /// compaction worker, indexed by worker. Engines that compact inline on
    /// the triggering client thread (charging stalls instead) return an
    /// empty vector. Harnesses extend the makespan lower bound with the
    /// busiest worker's delta over the measured window:
    /// `max(busiest client, busiest shard, busiest background worker)`.
    fn background_worker_times(&self) -> Vec<Nanos> {
        Vec::new()
    }

    /// Cumulative *serial* read-path time accumulated by each shard's
    /// busiest internal lock domain, indexed by shard. Even when
    /// [`Self::concurrent_reads`] is `true`, a small slice of every read
    /// still serialises inside the engine (a DRAM-cache sub-shard probe,
    /// for instance); this exposes that slice so harness queueing models
    /// can charge it to the shard instead of pretending reads are free of
    /// serial work. Engines whose reads serialise entirely (already
    /// captured by `concurrent_reads() == false`) or that do not track the
    /// residue return the default empty vector.
    fn shard_read_serial_times(&self) -> Vec<Nanos> {
        Vec::new()
    }

    /// Health of one shard under corruption pressure, for health
    /// endpoints and admin planes. The default reports every shard
    /// healthy; engines with a quarantine/degraded-mode subsystem
    /// (PrismDB) override it.
    fn shard_health(&self, _shard: usize) -> PartitionHealth {
        PartitionHealth::Healthy
    }

    /// Number of objects currently quarantined (replaced by
    /// tombstone-with-error sentinels) across all shards. The default
    /// reports zero; engines with an integrity subsystem override it.
    fn quarantined_objects(&self) -> u64 {
        0
    }

    /// Write-pressure hint for one shard, used by submission front-ends
    /// to apply back-pressure *before* a write stalls inside the engine.
    /// Values at or above `1.0` mean the shard's fast tier has reached its
    /// compaction high watermark (new writes are about to trigger or queue
    /// behind demotions); the default `0.0` means "no pressure signal".
    /// Engines without per-shard capacity tracking keep the default.
    fn shard_write_pressure(&self, _shard: usize) -> f64 {
        0.0
    }

    /// Pin a consistent read snapshot: subsequent [`Self::snapshot_get`] /
    /// [`Self::snapshot_scan`] calls with the returned id observe every
    /// write committed before the pin and none committed after, while
    /// writers keep making progress. Pair with
    /// [`Self::release_snapshot`] so the engine can garbage collect
    /// superseded versions.
    ///
    /// # Errors
    ///
    /// The default returns [`PrismError::Unsupported`]; engines with
    /// sequence-stamped versions (PrismDB) override it.
    fn snapshot(&self) -> Result<SnapshotId> {
        Err(PrismError::Unsupported("snapshots"))
    }

    /// Release a snapshot pinned by [`Self::snapshot`]. Releasing an
    /// already-released snapshot is a no-op. The default does nothing.
    fn release_snapshot(&self, _snapshot: SnapshotId) {}

    /// Point read as of `snapshot` (`None` if the key was absent at the
    /// snapshot). Does not observe writes committed after the pin.
    ///
    /// # Errors
    ///
    /// The default returns [`PrismError::Unsupported`].
    fn snapshot_get(&self, _snapshot: SnapshotId, _key: &Key) -> Result<Option<Value>> {
        Err(PrismError::Unsupported("snapshots"))
    }

    /// Range scan as of `snapshot`: up to `count` pairs with keys
    /// `>= start` in key order, reflecting exactly the state at the pin.
    ///
    /// # Errors
    ///
    /// The default returns [`PrismError::Unsupported`].
    fn snapshot_scan(
        &self,
        _snapshot: SnapshotId,
        _start: &Key,
        _count: usize,
    ) -> Result<Vec<(Key, Value)>> {
        Err(PrismError::Unsupported("snapshots"))
    }

    /// Commit an optimistic transaction: verify that no key in `reads`
    /// changed after `snapshot` was pinned, then apply `writes`
    /// atomically across every partition they touch. Used by
    /// [`crate::Transaction::commit`]; the caller still owns (and must
    /// release) the snapshot.
    ///
    /// # Errors
    ///
    /// [`PrismError::TxnConflict`] if validation fails (nothing applied);
    /// the default returns [`PrismError::Unsupported`].
    fn txn_commit(
        &self,
        _snapshot: SnapshotId,
        _reads: &[Key],
        _writes: WriteBatch,
    ) -> Result<Nanos> {
        Err(PrismError::Unsupported("transactions"))
    }
}

/// `Arc<E>` is itself a concurrent engine: every clone addresses the same
/// underlying store. This lets harness code accept `impl ConcurrentKvStore`
/// without caring whether the caller passed the engine or a shared handle.
impl<E: ConcurrentKvStore + ?Sized> ConcurrentKvStore for Arc<E> {
    fn put(&self, key: Key, value: Value) -> Result<Nanos> {
        (**self).put(key, value)
    }

    fn get(&self, key: &Key) -> Result<Lookup> {
        (**self).get(key)
    }

    fn delete(&self, key: &Key) -> Result<Nanos> {
        (**self).delete(key)
    }

    fn scan(&self, start: &Key, count: usize) -> Result<ScanResult> {
        (**self).scan(start, count)
    }

    fn apply_batch(&self, batch: WriteBatch) -> Result<Nanos> {
        (**self).apply_batch(batch)
    }

    fn stats(&self) -> EngineStats {
        (**self).stats()
    }

    fn elapsed(&self) -> Nanos {
        (**self).elapsed()
    }

    fn engine_name(&self) -> &str {
        (**self).engine_name()
    }

    fn shard_count(&self) -> usize {
        (**self).shard_count()
    }

    fn shard_of(&self, key: &Key) -> usize {
        (**self).shard_of(key)
    }

    fn shards_for_scan(&self, start: &Key) -> std::ops::Range<usize> {
        (**self).shards_for_scan(start)
    }

    fn concurrent_reads(&self) -> bool {
        (**self).concurrent_reads()
    }

    fn background_worker_times(&self) -> Vec<Nanos> {
        (**self).background_worker_times()
    }

    fn shard_read_serial_times(&self) -> Vec<Nanos> {
        (**self).shard_read_serial_times()
    }

    fn shard_health(&self, shard: usize) -> PartitionHealth {
        (**self).shard_health(shard)
    }

    fn quarantined_objects(&self) -> u64 {
        (**self).quarantined_objects()
    }

    fn shard_write_pressure(&self, shard: usize) -> f64 {
        (**self).shard_write_pressure(shard)
    }

    fn snapshot(&self) -> Result<SnapshotId> {
        (**self).snapshot()
    }

    fn release_snapshot(&self, snapshot: SnapshotId) {
        (**self).release_snapshot(snapshot)
    }

    fn snapshot_get(&self, snapshot: SnapshotId, key: &Key) -> Result<Option<Value>> {
        (**self).snapshot_get(snapshot, key)
    }

    fn snapshot_scan(
        &self,
        snapshot: SnapshotId,
        start: &Key,
        count: usize,
    ) -> Result<Vec<(Key, Value)>> {
        (**self).snapshot_scan(snapshot, start, count)
    }

    fn txn_commit(&self, snapshot: SnapshotId, reads: &[Key], writes: WriteBatch) -> Result<Nanos> {
        (**self).txn_commit(snapshot, reads, writes)
    }
}

/// A cloneable [`crate::KvStore`] handle over a shared concurrent engine.
///
/// Each thread gets its own `SharedKv` (cheap `Arc` clone); every handle
/// drives the same underlying engine.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use prism_types::{ConcurrentKvStore, Key, KvStore, MemStore, MutexKv, SharedKv, Value};
///
/// let engine = Arc::new(MutexKv::new(MemStore::default()));
/// let mut handle = SharedKv::new(engine.clone());
/// handle.put(Key::from_id(1), Value::filled(8, 7)).unwrap();
/// assert!(engine.get(&Key::from_id(1)).unwrap().value.is_some());
/// ```
#[derive(Debug)]
pub struct SharedKv<E: ConcurrentKvStore> {
    inner: Arc<E>,
}

impl<E: ConcurrentKvStore> SharedKv<E> {
    /// Wrap a shared engine.
    pub fn new(inner: Arc<E>) -> Self {
        SharedKv { inner }
    }

    /// The shared engine behind this handle.
    pub fn engine(&self) -> &Arc<E> {
        &self.inner
    }
}

impl<E: ConcurrentKvStore> Clone for SharedKv<E> {
    fn clone(&self) -> Self {
        SharedKv {
            inner: self.inner.clone(),
        }
    }
}

impl<E: ConcurrentKvStore> KvStore for SharedKv<E> {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        self.inner.put(key, value)
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        self.inner.get(key)
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        self.inner.delete(key)
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        self.inner.scan(start, count)
    }

    fn apply_batch(&mut self, batch: WriteBatch) -> Result<Nanos> {
        self.inner.apply_batch(batch)
    }

    fn stats(&self) -> EngineStats {
        self.inner.stats()
    }

    fn elapsed(&self) -> Nanos {
        self.inner.elapsed()
    }

    fn engine_name(&self) -> &str {
        self.inner.engine_name()
    }
}

/// A single-threaded engine made thread-safe by one global mutex.
///
/// This is the honest adapter for engines without internal sharding (the
/// RocksDB-style LSM baselines): every operation takes the same lock, so
/// concurrent clients serialise completely and [`ConcurrentKvStore`]'s
/// shard model reports a single shard.
#[derive(Debug)]
pub struct MutexKv<E> {
    /// Engine name captured at construction (the lock guard cannot outlive
    /// a borrowed `&str` from `engine_name`).
    name: String,
    inner: Mutex<E>,
}

impl<E: KvStore> MutexKv<E> {
    /// Wrap an engine in a global lock.
    pub fn new(engine: E) -> Self {
        MutexKv {
            name: engine.engine_name().to_string(),
            inner: Mutex::new(engine),
        }
    }

    /// Unwrap, returning the inner engine.
    pub fn into_inner(self) -> E {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Lock the inner engine directly (e.g. to read engine-specific state
    /// that is not part of the trait).
    pub fn lock(&self) -> MutexGuard<'_, E> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<E: KvStore + Send> ConcurrentKvStore for MutexKv<E> {
    fn put(&self, key: Key, value: Value) -> Result<Nanos> {
        self.lock().put(key, value)
    }

    fn get(&self, key: &Key) -> Result<Lookup> {
        self.lock().get(key)
    }

    fn delete(&self, key: &Key) -> Result<Nanos> {
        self.lock().delete(key)
    }

    fn scan(&self, start: &Key, count: usize) -> Result<ScanResult> {
        self.lock().scan(start, count)
    }

    /// Group commit under the global lock: the lock is taken once for the
    /// whole batch, so concurrent clients pay one acquisition per group
    /// instead of one per entry (and the inner engine may further amortise
    /// via its own [`KvStore::apply_batch`], e.g. one WAL fsync per
    /// batch).
    fn apply_batch(&self, batch: WriteBatch) -> Result<Nanos> {
        self.lock().apply_batch(batch)
    }

    fn stats(&self) -> EngineStats {
        self.lock().stats()
    }

    fn elapsed(&self) -> Nanos {
        self.lock().elapsed()
    }

    fn engine_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn concurrent_trait_is_object_safe() {
        let store: Box<dyn ConcurrentKvStore> = Box::new(MutexKv::new(MemStore::default()));
        store.put(Key::from_id(1), Value::filled(8, 1)).unwrap();
        assert!(store.get(&Key::from_id(1)).unwrap().value.is_some());
        assert_eq!(store.shard_count(), 1);
        assert_eq!(store.shard_of(&Key::from_id(99)), 0);
    }

    #[test]
    fn mutex_adapter_is_driveable_from_many_threads() {
        let store = Arc::new(MutexKv::new(MemStore::default()));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let id = t * 1_000 + i;
                        store
                            .put(Key::from_id(id), Value::filled(16, t as u8))
                            .unwrap();
                    }
                });
            }
        });
        let scanned = store.scan(&Key::min(), 1_000).unwrap();
        assert_eq!(scanned.entries.len(), 200);
        assert_eq!(store.engine_name(), "memstore");
    }

    #[test]
    fn shared_handle_implements_kvstore_over_one_engine() {
        let engine = Arc::new(MutexKv::new(MemStore::default()));
        let mut a = SharedKv::new(engine.clone());
        let mut b = a.clone();
        a.put(Key::from_id(1), Value::filled(4, 1)).unwrap();
        b.put(Key::from_id(2), Value::filled(4, 2)).unwrap();
        assert!(a.get(&Key::from_id(2)).unwrap().value.is_some());
        assert_eq!(b.scan(&Key::min(), 10).unwrap().entries.len(), 2);
        assert_eq!(a.engine_name(), "memstore");
        assert_eq!(Arc::strong_count(a.engine()), 3);
        let _ = b.delete(&Key::from_id(1)).unwrap();
        assert!(a.get(&Key::from_id(1)).unwrap().value.is_none());
        assert!(b.elapsed() > Nanos::ZERO);
        assert!(b.stats().reads_found() > 0);
    }
}
