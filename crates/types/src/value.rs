//! Value representation.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A value stored in the database.
///
/// Values are immutable byte buffers backed by [`bytes::Bytes`], so cloning
/// a value (e.g. when serving it from a cache and from NVM) is a cheap
/// reference-count bump rather than a copy — the same property real engines
/// get from slice-owning block caches.
///
/// # Example
///
/// ```
/// use prism_types::Value;
///
/// let v = Value::filled(1024, 0x5A);
/// assert_eq!(v.len(), 1024);
/// assert!(v.as_bytes().iter().all(|&b| b == 0x5A));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Value(Bytes);

impl Value {
    /// Build a value from a byte vector.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Value(Bytes::from(bytes))
    }

    /// Build a value of `len` bytes all set to `fill`.
    ///
    /// Workload generators use this to produce objects of the sizes the
    /// paper evaluates (1 KB for YCSB, 102 B / 370 B for the Twitter
    /// traces) without paying for random content generation.
    pub fn filled(len: usize, fill: u8) -> Self {
        Value(Bytes::from(vec![fill; len]))
    }

    /// An empty value (used for delete tombstones in some engines).
    pub fn empty() -> Self {
        Value(Bytes::new())
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the value holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({} bytes)", self.0.len())
    }
}

impl From<Vec<u8>> for Value {
    fn from(bytes: Vec<u8>) -> Self {
        Value::from_vec(bytes)
    }
}

impl From<&[u8]> for Value {
    fn from(bytes: &[u8]) -> Self {
        Value(Bytes::copy_from_slice(bytes))
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_has_requested_size_and_content() {
        let v = Value::filled(37, 3);
        assert_eq!(v.len(), 37);
        assert!(v.as_bytes().iter().all(|&b| b == 3));
        assert!(!v.is_empty());
    }

    #[test]
    fn empty_value() {
        let v = Value::empty();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn conversions() {
        let v: Value = vec![1, 2, 3].into();
        assert_eq!(v.as_bytes(), &[1, 2, 3]);
        let v2: Value = (&[9u8, 8][..]).into();
        assert_eq!(v2.as_ref(), &[9, 8]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let v = Value::filled(4096, 1);
        let c = v.clone();
        assert_eq!(v, c);
        assert_eq!(format!("{:?}", c), "Value(4096 bytes)");
    }
}
