//! Simulated-time units.
//!
//! Every latency in the reproduction is expressed in virtual nanoseconds so
//! experiments are deterministic and run orders of magnitude faster than
//! real time while preserving the relative latency gaps between storage
//! tiers that drive the paper's results.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span (or instant) of simulated time, in nanoseconds.
///
/// `Nanos` is used both as a duration ("this read cost 6 µs") and as an
/// instant on a partition's virtual clock ("the foreground thread has
/// advanced to t = 1.2 s"). Arithmetic saturates on subtraction via
/// [`Nanos::saturating_sub`] where wrap-around would be a bug.
///
/// # Example
///
/// ```
/// use prism_types::Nanos;
///
/// let read = Nanos::from_micros(391);
/// let write = Nanos::from_micros(10);
/// assert!(read > write);
/// assert_eq!((read + write).as_micros(), 401);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration / the epoch of a virtual clock.
    pub const ZERO: Nanos = Nanos(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a floating point value, for throughput math.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds as a floating point value, for latency tables.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Scale by a floating point factor (used by bandwidth models).
    pub fn mul_f64(self, factor: f64) -> Nanos {
        Nanos((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// True if this is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        Nanos(iter.map(|n| n.0).sum())
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_micros(6).as_nanos(), 6_000);
        assert_eq!(Nanos::from_millis(2).as_micros(), 2_000);
        assert_eq!(Nanos::from_secs(3).as_millis(), 3_000);
        assert!((Nanos::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Nanos::from_nanos(100);
        let b = Nanos::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 2).as_nanos(), 50);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_and_mul_f64() {
        let total: Nanos = (1..=4).map(Nanos::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
        assert_eq!(Nanos::from_nanos(1000).mul_f64(1.5).as_nanos(), 1500);
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(format!("{}", Nanos::from_nanos(500)), "500ns");
        assert!(format!("{}", Nanos::from_micros(42)).ends_with("us"));
        assert!(format!("{}", Nanos::from_millis(42)).ends_with("ms"));
        assert!(format!("{}", Nanos::from_secs(2)).ends_with('s'));
    }
}
