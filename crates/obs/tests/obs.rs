//! Integration battery for the observability crate: a many-thread
//! recording storm, a property test pinning bucketed percentiles to a
//! sorted-vec oracle, trace-ring wraparound under concurrency, and a
//! parse-it-back round trip of the Prometheus exposition. (The
//! end-to-end admin-plane scrape during a fault-injected workload lives
//! in `prism-net`'s `tests/admin.rs`, next to the transport it drives.)

use std::collections::BTreeMap;
use std::sync::Arc;

use prism_obs::trace::{category, TraceBuffer};
use prism_obs::{
    HistogramSnapshot, LatencyHistogram, MetricsRegistry, ObsHub, BOUNDS, LOWEST_BOUND, NUM_BOUNDS,
};
use prism_types::{EngineStats, FrontendStats, NetStats};
use proptest::prelude::*;

/// Exact nearest-rank order statistic of a sorted slice — the same rank
/// definition (`round((n - 1) * q)`) the histogram uses, so the oracle
/// value must land inside the reported bucket.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Many threads hammer one shared histogram, counter, and gauge with no
/// coordination; every sample must be accounted for exactly — bucketed
/// recording is lossy in *value resolution*, never in *count*.
#[test]
fn concurrent_recording_storm_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;
    let hub = Arc::new(ObsHub::new());
    let hist = hub.registry.histogram("storm_ns");
    let ops = hub.registry.counter("storm_ops");
    let depth = hub.registry.gauge("storm_depth");

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = Arc::clone(&hist);
            let ops = Arc::clone(&ops);
            let depth = Arc::clone(&depth);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across five decades, plus a
                    // known min (100 ns) and max (1 s) per thread.
                    let ns = match i % 5 {
                        0 => 100,
                        1 => 3_700 + t,
                        2 => 81_000 + i % 997,
                        3 => 2_400_000,
                        _ => 1_000_000_000,
                    };
                    hist.record(ns);
                    ops.inc();
                    depth.add(1);
                    depth.sub(1);
                }
            });
        }
    });

    let snap = hist.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    assert_eq!(snap.min, 100);
    assert_eq!(snap.max, 1_000_000_000);
    assert_eq!(ops.get(), THREADS * PER_THREAD);
    assert_eq!(depth.get(), 0, "adds and subs must balance");
    assert!(depth.high_water() >= 1);
    // The registry snapshot sees the same instruments by name.
    let registry_snap = hub.registry.snapshot();
    assert_eq!(
        registry_snap.histogram("storm_ns").unwrap().count(),
        THREADS * PER_THREAD
    );
    assert_eq!(
        registry_snap.counter("storm_ops"),
        Some(THREADS * PER_THREAD)
    );
}

proptest! {
    /// For arbitrary latency sets the bucketed percentile must bracket
    /// the exact sorted-vec order statistic: the oracle lies inside the
    /// reported bucket's `[lo, hi]` bounds, the midpoint estimate is
    /// within one bucket's relative error (×√2) whenever the sample is
    /// above the first bucket, and percentiles stay monotone in q.
    #[test]
    fn percentiles_bracket_the_sorted_oracle(
        mut values in prop::collection::vec(1u64..20_000_000_000, 1..400),
        qs in prop::collection::vec(0.0f64..1.0, 1..6),
    ) {
        let hist = LatencyHistogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.min, values[0]);
        prop_assert_eq!(snap.max, *values.last().unwrap());
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        for &q in &qs {
            let exact = oracle(&values, q);
            let (lo, hi) = snap.percentile_bounds(q);
            prop_assert!(
                lo <= exact && exact <= hi,
                "oracle {} outside bucket [{}, {}] at q={}", exact, lo, hi, q
            );
            let estimate = snap.percentile(q);
            if exact > LOWEST_BOUND {
                let ratio = estimate / exact as f64;
                prop_assert!(
                    (1.0 / 1.45..=1.45).contains(&ratio),
                    "estimate {} vs oracle {} at q={}", estimate, exact, q
                );
            }
        }
        let mut prev = 0.0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let p = snap.percentile(q);
            prop_assert!(p >= prev, "percentile not monotone at q={}", q);
            prev = p;
        }
    }
}

/// The trace ring keeps exactly the newest `capacity` events across a
/// deep wraparound, with gapless in-order sequence numbers.
#[test]
fn trace_ring_wraparound_keeps_the_newest_tail() {
    let trace = TraceBuffer::new(64);
    for i in 0..1_000u64 {
        trace.record(
            category::BACKPRESSURE,
            Some((i % 4) as u32),
            i,
            format!("i={i}"),
        );
    }
    assert_eq!(trace.recorded(), 1_000);
    assert_eq!(trace.len(), 64);
    let events = trace.last(usize::MAX);
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (936..1_000).collect::<Vec<u64>>());
    // The JSON dump covers the same tail, one object per line.
    let dump = trace.dump_json_lines(64);
    assert_eq!(dump.lines().count(), 64);
    assert!(dump.lines().next().unwrap().contains("\"seq\":936"));
    assert!(dump.lines().last().unwrap().contains("\"i=999\""));
}

/// Concurrent recorders racing through many wraparounds must never
/// duplicate a sequence number, exceed capacity, or retain anything but
/// recent events.
#[test]
fn trace_ring_survives_concurrent_wraparound() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let trace = Arc::new(TraceBuffer::new(128));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let trace = Arc::clone(&trace);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    trace.record(category::CONN_OPEN, None, t * PER_THREAD + i, "");
                }
            });
        }
    });
    assert_eq!(trace.recorded(), THREADS * PER_THREAD);
    assert_eq!(trace.len(), 128);
    let events = trace.last(usize::MAX);
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    let unique_before = seqs.len();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), unique_before, "sequence numbers must be unique");
    // The last-allocated seq is always retained: after its insertion at
    // most THREADS-1 other already-allocated events can still arrive,
    // far fewer than the ring's capacity.
    assert_eq!(
        *seqs.last().unwrap(),
        THREADS * PER_THREAD - 1,
        "the newest event must survive the ring"
    );
}

/// Parse the Prometheus text exposition back into name→value pairs and
/// check it reproduces the snapshot: every counter and gauge verbatim,
/// and each histogram's cumulative buckets monotone, summing to `_count`
/// with `_sum` intact.
#[test]
fn prometheus_exposition_round_trips() {
    let registry = MetricsRegistry::new();
    registry.counter("demo_total").add(42);
    let gauge = registry.gauge("demo_depth");
    gauge.add(7);
    gauge.sub(2);
    let hist = registry.histogram("demo_ns");
    for v in [80u64, 150, 150, 40_000, 2_000_000, 15_000_000_000] {
        hist.record(v);
    }
    registry.set_engine_source(Box::new(|| {
        Some(EngineStats {
            reads_from_nvm: 13,
            ..EngineStats::default()
        })
    }));
    registry.set_frontend_source(Box::new(|| {
        Some(FrontendStats {
            completed: 99,
            ..FrontendStats::default()
        })
    }));
    registry.set_net_source(Box::new(|| {
        Some(NetStats {
            frames_received: 55,
            ..NetStats::default()
        })
    }));

    let snap = registry.snapshot();
    let text = snap.to_prometheus();

    // Parse: skip comments, collect `name value` samples.
    let mut samples: BTreeMap<String, f64> = BTreeMap::new();
    let mut bucket_series: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(' ').expect("sample line");
        if let Some((family, le)) = name
            .strip_suffix("\"}")
            .and_then(|n| n.split_once("_bucket{le=\""))
        {
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().unwrap()
            };
            bucket_series
                .entry(family.to_string())
                .or_default()
                .push((bound, value.parse().unwrap()));
            continue;
        }
        samples.insert(name.to_string(), value.parse().expect("numeric sample"));
    }

    // Counters (registered and flattened) and gauges round-trip exactly.
    for (name, value) in &snap.counters {
        assert_eq!(samples.get(name).copied(), Some(*value as f64), "{name}");
    }
    assert_eq!(samples["demo_total"], 42.0);
    assert_eq!(samples["engine_reads_from_nvm"], 13.0);
    assert_eq!(samples["frontend_completed"], 99.0);
    assert_eq!(samples["net_frames_received"], 55.0);
    assert_eq!(samples["demo_depth"], 5.0);
    assert_eq!(samples["demo_depth_high_water"], 7.0);

    // Histogram series: bounds and cumulative counts monotone, +Inf
    // bucket equals _count, _sum matches the recorded total.
    let series = &bucket_series["demo_ns"];
    for pair in series.windows(2) {
        assert!(pair[0].0 < pair[1].0, "le bounds must increase");
        assert!(pair[0].1 <= pair[1].1, "cumulative counts must not drop");
    }
    let (last_bound, total) = *series.last().unwrap();
    assert!(last_bound.is_infinite());
    assert_eq!(total, 6);
    assert_eq!(samples["demo_ns_count"], 6.0);
    assert_eq!(
        samples["demo_ns_sum"],
        (80 + 150 + 150 + 40_000 + 2_000_000 + 15_000_000_000u64) as f64
    );
    // The finite-bucket cumulative count excludes only the overflow
    // sample (15 s > the ~13.4 s top bound).
    let finite_max = series
        .iter()
        .filter(|(b, _)| b.is_finite())
        .map(|&(_, c)| c)
        .max()
        .unwrap();
    assert_eq!(finite_max, 5);
    assert_eq!(BOUNDS.len(), NUM_BOUNDS);
}

/// `MetricsSnapshot::to_json` carries the same numbers as the typed
/// snapshot, so `/stats.json` and `/metrics` can never disagree.
#[test]
fn json_exposition_matches_snapshot() {
    let registry = MetricsRegistry::new();
    registry.counter("j_total").add(3);
    registry.histogram("j_ns").record(12_345);
    let snap = registry.snapshot();
    let json = snap.to_json();
    assert!(json.contains("\"j_total\":3"));
    assert!(json.contains("\"count\":1"));
    assert!(json.contains("\"sum\":12345"));
    let hist_snap: &HistogramSnapshot = snap.histogram("j_ns").unwrap();
    assert_eq!(hist_snap.count(), 1);
}
