//! Minimal hand-rolled JSON emission.
//!
//! The workspace deliberately carries no `serde_json` (the build
//! environment is offline; see `shims/README.md`), and every JSON
//! artifact in the repo — bench reports, the admin plane — is emitted by
//! hand. This module centralises the two fiddly parts: string escaping
//! and comma placement.

/// Append `s` to `out` with JSON string escaping applied (quotes are NOT
/// added by this function).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render `v` as a JSON number (JSON has no NaN/Inf; both become 0).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Incremental builder for one JSON object.
///
/// # Example
///
/// ```
/// use prism_obs::json::JsonObject;
///
/// let mut obj = JsonObject::new();
/// obj.number("a", 1u64);
/// obj.string("b", "x\"y");
/// assert_eq!(obj.finish(), r#"{"a":1,"b":"x\"y"}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(key, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Add an unsigned integer field.
    pub fn number(&mut self, key: &str, value: u64) {
        self.key(key);
        self.buf.push_str(&value.to_string());
    }

    /// Add a float field (NaN/Inf rendered as 0).
    pub fn float(&mut self, key: &str, value: f64) {
        self.key(key);
        self.buf.push_str(&fmt_f64(value));
    }

    /// Add a boolean field.
    pub fn boolean(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Add a string field (escaped and quoted).
    pub fn string(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        escape_into(value, &mut self.buf);
        self.buf.push('"');
    }

    /// Add a field whose value is already-rendered JSON (an object, an
    /// array, `null`).
    pub fn raw(&mut self, key: &str, json: &str) {
        self.key(key);
        self.buf.push_str(json);
    }

    /// Close the object and return the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn object_builder_places_commas() {
        let mut obj = JsonObject::new();
        obj.number("n", 7);
        obj.float("f", 1.5);
        obj.boolean("b", true);
        obj.raw("r", "[1,2]");
        assert_eq!(obj.finish(), r#"{"n":7,"f":1.5,"b":true,"r":[1,2]}"#);
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn non_finite_floats_render_as_zero() {
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(2.25), "2.25");
    }
}
