//! A lock-free log-bucketed latency histogram.
//!
//! Recording is a single relaxed `fetch_add` on one of a fixed set of
//! atomic `u64` buckets, so any number of threads can record into one
//! shared histogram with no coordination beyond cache-line traffic.
//! Buckets grow geometrically by ~√2 (two buckets per octave) from
//! [`LOWEST_BOUND`] (100 ns) to past [`HIGHEST_BOUND`] (10 s), which
//! bounds the relative error of any reported percentile by one bucket's
//! width: a reported value is within ×√2 of the true order statistic,
//! and the true value always lies inside the reported bucket's
//! `[lower, upper]` bounds (see [`HistogramSnapshot::percentile_bounds`]).
//!
//! The same histogram type serves both of the repo's time domains —
//! simulated engine [`prism_types::Nanos`] and wall-clock
//! `Instant::elapsed` nanoseconds — because both are plain `u64` ns;
//! callers keep the domains apart by metric *name*
//! (`engine_get_ns` vs `frontend_e2e_get_ns`).
//!
//! # Example
//!
//! ```
//! use prism_obs::LatencyHistogram;
//!
//! let hist = LatencyHistogram::new();
//! for v in [120, 250, 4_000, 1_000_000] {
//!     hist.record(v);
//! }
//! let snap = hist.snapshot();
//! assert_eq!(snap.count(), 4);
//! // rank(0.5) of 4 samples is index round(3 * 0.5) = 2 → 4_000 ns,
//! // and the true order statistic always lies inside the reported bucket.
//! let (lo, hi) = snap.percentile_bounds(0.5);
//! assert!(lo <= 4_000 && 4_000 <= hi);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bound of the first bucket: everything at or below 100 ns lands
/// in bucket 0.
pub const LOWEST_BOUND: u64 = 100;

/// The histogram resolves values up to at least 10 s; anything beyond the
/// last finite bound lands in the overflow bucket (whose reported
/// representative is the recorded maximum).
pub const HIGHEST_BOUND: u64 = 10_000_000_000;

/// Number of finite bucket bounds. Bound `i` is `100 << (i/2)` for even
/// `i` and `141 << (i/2)` for odd `i` (141/100 ≈ √2), so consecutive
/// bounds differ by ~√2 and the last bound (`100 << 27` ≈ 13.4 s) covers
/// [`HIGHEST_BOUND`].
pub const NUM_BOUNDS: usize = 55;

/// Total buckets: one per finite bound plus the overflow bucket.
pub const NUM_BUCKETS: usize = NUM_BOUNDS + 1;

/// Upper (inclusive) bound of finite bucket `i`.
const fn bound(i: usize) -> u64 {
    if i % 2 == 0 {
        LOWEST_BOUND << (i / 2)
    } else {
        141 << (i / 2)
    }
}

const fn build_bounds() -> [u64; NUM_BOUNDS] {
    let mut bounds = [0u64; NUM_BOUNDS];
    let mut i = 0;
    while i < NUM_BOUNDS {
        bounds[i] = bound(i);
        i += 1;
    }
    bounds
}

/// Inclusive upper bounds of the finite buckets, strictly increasing.
pub const BOUNDS: [u64; NUM_BOUNDS] = build_bounds();

/// Bucket index a value of `ns` nanoseconds lands in.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    // partition_point returns the count of bounds strictly below `ns`,
    // which is exactly the first bucket whose inclusive bound covers it;
    // values beyond every finite bound fall through to the overflow
    // bucket at NUM_BOUNDS.
    BOUNDS.partition_point(|&b| b < ns)
}

/// Lock-free log-bucketed histogram of nanosecond latencies.
///
/// See the [module docs](self) for the bucket layout and error bounds.
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count())
            .field("sum", &snap.sum)
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one latency of `ns` nanoseconds. Lock-free; safe to call
    /// from any number of threads concurrently.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Fold every sample of `other` into `self` (bucket-wise addition).
    pub fn merge(&self, other: &LatencyHistogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Fold a previously taken snapshot into `self`.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Shorthand for `snapshot().percentile(q)`.
    pub fn percentile(&self, q: f64) -> f64 {
        self.snapshot().percentile(q)
    }

    /// A point-in-time copy of the bucket counts. Taking a snapshot while
    /// other threads record never blocks them; a concurrent snapshot may
    /// miss in-flight samples but is always internally consistent enough
    /// for percentile queries (`count` is recomputed from the copied
    /// buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, immutable copy of a [`LatencyHistogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`buckets[NUM_BOUNDS]` is overflow).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all recorded values, in ns.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Number of samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean recorded value in ns (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum as f64 / count as f64
    }

    /// Index of the bucket holding the rank-`q` sample, or `None` when
    /// empty. The rank is `round((count - 1) * q)` — the same
    /// nearest-rank definition the bench runner's sorted-vec oracle uses,
    /// so the oracle's value is guaranteed to lie inside the returned
    /// bucket.
    fn percentile_bucket(&self, q: f64) -> Option<usize> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((count - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return Some(i);
            }
        }
        Some(NUM_BUCKETS - 1)
    }

    /// The `[lower, upper]` value bounds (ns) of the bucket holding the
    /// rank-`q` sample; the true order statistic is guaranteed to lie in
    /// this interval. Returns `(0, 0)` when empty. The overflow bucket
    /// reports `[last finite bound + 1, recorded max]`.
    pub fn percentile_bounds(&self, q: f64) -> (u64, u64) {
        let Some(i) = self.percentile_bucket(q) else {
            return (0, 0);
        };
        if i == NUM_BUCKETS - 1 {
            (
                BOUNDS[NUM_BOUNDS - 1] + 1,
                self.max.max(BOUNDS[NUM_BOUNDS - 1] + 1),
            )
        } else {
            let lower = if i == 0 { 0 } else { BOUNDS[i - 1] + 1 };
            (lower, BOUNDS[i])
        }
    }

    /// Estimated rank-`q` order statistic in ns: the midpoint of the
    /// bucket holding that rank, clamped to the observed `[min, max]`.
    /// Error is bounded by the bucket width (×√2), i.e. the estimate is
    /// within ~21 % of the true value for in-range samples. Returns 0.0
    /// when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let (lower, upper) = self.percentile_bounds(q);
        let mid = (lower as f64 + upper as f64) / 2.0;
        mid.clamp(self.min as f64, self.max as f64)
    }

    /// Fold another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Render the histogram in Prometheus text exposition format
    /// (cumulative `_bucket{le=...}` series plus `_sum` and `_count`),
    /// using `name` as the metric family name.
    pub fn to_prometheus(&self, name: &str, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate().take(NUM_BOUNDS) {
            cumulative += n;
            if n > 0 || i + 1 == NUM_BOUNDS {
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", BOUNDS[i]);
            }
        }
        cumulative += self.buckets[NUM_BUCKETS - 1];
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {cumulative}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_cover_the_range() {
        for pair in BOUNDS.windows(2) {
            assert!(pair[0] < pair[1], "bounds must increase: {pair:?}");
            let ratio = pair[1] as f64 / pair[0] as f64;
            assert!(
                (1.30..=1.55).contains(&ratio),
                "~√2 growth expected, got {ratio} at {pair:?}"
            );
        }
        assert_eq!(BOUNDS[0], LOWEST_BOUND);
        assert!(BOUNDS[NUM_BOUNDS - 1] >= HIGHEST_BOUND);
    }

    #[test]
    fn bucket_index_matches_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(100), 0);
        assert_eq!(bucket_index(101), 1);
        assert_eq!(bucket_index(141), 1);
        assert_eq!(bucket_index(142), 2);
        assert_eq!(bucket_index(u64::MAX), NUM_BOUNDS);
        for (i, &b) in BOUNDS.iter().enumerate() {
            assert_eq!(bucket_index(b), i);
            assert_eq!(bucket_index(b + 1), i + 1);
        }
    }

    #[test]
    fn record_and_percentile_roundtrip() {
        let hist = LatencyHistogram::new();
        for v in 1..=1000u64 {
            hist.record(v * 1_000); // 1 µs .. 1 ms
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.min, 1_000);
        assert_eq!(snap.max, 1_000_000);
        // p50 of 1..=1000 µs is ~500 µs; the estimate must be within √2.
        let p50 = snap.percentile(0.50);
        assert!(
            (500_000.0 / 1.45..=500_000.0 * 1.45).contains(&p50),
            "{p50}"
        );
        let (lo, hi) = snap.percentile_bounds(0.50);
        assert!(lo <= 500_000 && 500_000 <= hi);
        // Percentiles are monotone in q.
        assert!(snap.percentile(0.99) >= snap.percentile(0.50));
        assert!(snap.percentile(0.999) >= snap.percentile(0.99));
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let snap = LatencyHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.percentile(0.99), 0.0);
        assert_eq!(snap.percentile_bounds(0.5), (0, 0));
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn overflow_bucket_reports_recorded_max() {
        let hist = LatencyHistogram::new();
        hist.record(30_000_000_000); // 30 s, beyond the last bound
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1);
        let (lo, hi) = snap.percentile_bounds(1.0);
        assert!(lo > BOUNDS[NUM_BOUNDS - 1]);
        assert_eq!(hi, 30_000_000_000);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(200);
        b.record(200);
        b.record(5_000);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.sum, 5_400);
        assert_eq!(snap.min, 200);
        assert_eq!(snap.max, 5_000);
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let hist = LatencyHistogram::new();
        hist.record(50);
        hist.record(150);
        hist.record(20_000_000_000);
        let mut out = String::new();
        hist.snapshot().to_prometheus("test_ns", &mut out);
        assert!(out.contains("# TYPE test_ns histogram"));
        assert!(out.contains("test_ns_bucket{le=\"100\"} 1"));
        assert!(out.contains("test_ns_bucket{le=\"200\"} 2"));
        assert!(out.contains("test_ns_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("test_ns_count 3"));
        assert!(out.contains("test_ns_sum 20000000200"));
    }
}
