//! Named metrics registry and its snapshot / exposition formats.
//!
//! A [`MetricsRegistry`] holds three kinds of live instruments —
//! monotone [`Counter`]s, instantaneous [`Gauge`]s with built-in
//! high-water marks, and [`LatencyHistogram`]s — plus *typed stats
//! sources*: closures that produce the repo's six existing stats structs
//! ([`EngineStats`], [`FrontendStats`], [`NetStats`] and the
//! [`CompactionStats`]/[`TxnStats`]/[`IntegrityStats`] nested inside
//! `EngineStats`) from whatever layer owns them. One
//! [`MetricsRegistry::snapshot`] call folds everything into a
//! [`MetricsSnapshot`]: the typed structs survive as typed views (no
//! existing caller breaks) *and* every field is flattened into the
//! name→value counter map, so the Prometheus and JSON expositions cover
//! the whole system uniformly.
//!
//! [`CompactionStats`]: prism_types::CompactionStats
//! [`TxnStats`]: prism_types::TxnStats
//! [`IntegrityStats`]: prism_types::IntegrityStats

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use prism_types::{EngineStats, FrontendStats, NetStats, PartitionHealth};

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::json::{fmt_f64, JsonObject};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value with a built-in high-water mark: every update
/// that raises the value also raises the peak, so post-run snapshots see
/// peak pressure, not just the final state.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the instantaneous value (raising the high-water mark if
    /// needed).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Add `n` and return the new value (raising the high-water mark).
    pub fn add(&self, n: u64) -> u64 {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Subtract `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Instantaneous value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever observed.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Point-in-time view of one [`Gauge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeView {
    /// Instantaneous value at snapshot time.
    pub value: u64,
    /// Highest value ever observed.
    pub high_water: u64,
}

/// Health of one shard as reported through the admin plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealthView {
    /// Shard (partition) index.
    pub shard: usize,
    /// Current health state.
    pub health: PartitionHealth,
}

/// Per-partition health rollup served by `GET /health`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Health of every shard, in shard order.
    pub partitions: Vec<ShardHealthView>,
    /// Objects currently quarantined across all shards.
    pub quarantined_objects: u64,
    /// Tickets handed out but not yet completed or abandoned.
    pub outstanding_tickets: u64,
}

impl HealthReport {
    /// Number of shards currently degraded.
    pub fn degraded_partitions(&self) -> u64 {
        self.partitions
            .iter()
            .filter(|p| p.health == PartitionHealth::Degraded)
            .count() as u64
    }

    /// True when every shard is healthy.
    pub fn healthy(&self) -> bool {
        self.degraded_partitions() == 0
    }

    /// Render as one JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.boolean("healthy", self.healthy());
        obj.number("partitions", self.partitions.len() as u64);
        obj.number("degraded_partitions", self.degraded_partitions());
        obj.number("quarantined_objects", self.quarantined_objects);
        obj.number("outstanding_tickets", self.outstanding_tickets);
        let mut shards = String::from("[");
        for (i, shard) in self.partitions.iter().enumerate() {
            if i > 0 {
                shards.push(',');
            }
            let mut entry = JsonObject::new();
            entry.number("partition", shard.shard as u64);
            entry.string(
                "health",
                match shard.health {
                    PartitionHealth::Healthy => "healthy",
                    PartitionHealth::Degraded => "degraded",
                },
            );
            shards.push_str(&entry.finish());
        }
        shards.push(']');
        obj.raw("shards", &shards);
        obj.finish()
    }
}

type EngineSource = Box<dyn Fn() -> Option<EngineStats> + Send>;
type FrontendSource = Box<dyn Fn() -> Option<FrontendStats> + Send>;
type NetSource = Box<dyn Fn() -> Option<NetStats> + Send>;
type HealthSource = Box<dyn Fn() -> Option<HealthReport> + Send>;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<LatencyHistogram>>,
    engine: Option<EngineSource>,
    frontend: Option<FrontendSource>,
    net: Option<NetSource>,
    health: Option<HealthSource>,
}

/// Registry of named instruments plus typed stats sources; see the
/// [module docs](self).
///
/// Instruments are created on first use (`counter`/`gauge`/`histogram`
/// are get-or-create) and shared by `Arc`, so the layer that records
/// into an instrument holds it directly — the registry lock is only
/// taken at registration and snapshot time, never on the record path.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(LatencyHistogram::new())),
        )
    }

    /// Install the engine-stats source (typically a closure over a
    /// `Weak` engine handle returning `None` once the engine is gone).
    /// Replaces any previous source.
    pub fn set_engine_source(&self, source: EngineSource) {
        self.lock().engine = Some(source);
    }

    /// Install the frontend-stats source. Replaces any previous source.
    pub fn set_frontend_source(&self, source: FrontendSource) {
        self.lock().frontend = Some(source);
    }

    /// Install the net-stats source. Replaces any previous source.
    pub fn set_net_source(&self, source: NetSource) {
        self.lock().net = Some(source);
    }

    /// Install the health source. Replaces any previous source.
    pub fn set_health_source(&self, source: HealthSource) {
        self.lock().health = Some(source);
    }

    /// Fold every instrument and typed source into one snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut counters: BTreeMap<String, u64> = inner
            .counters
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges: BTreeMap<String, GaugeView> = inner
            .gauges
            .iter()
            .map(|(name, g)| {
                (
                    name.clone(),
                    GaugeView {
                        value: g.get(),
                        high_water: g.high_water(),
                    },
                )
            })
            .collect();
        let histograms: BTreeMap<String, HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        let engine = inner.engine.as_ref().and_then(|s| s());
        let frontend = inner.frontend.as_ref().and_then(|s| s());
        let net = inner.net.as_ref().and_then(|s| s());
        let health = inner.health.as_ref().and_then(|s| s());
        drop(inner);
        if let Some(stats) = &engine {
            flatten_engine(stats, &mut counters);
        }
        if let Some(stats) = &frontend {
            flatten_frontend(stats, &mut counters);
        }
        if let Some(stats) = &net {
            flatten_net(stats, &mut counters);
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            engine,
            frontend,
            net,
            health,
        }
    }
}

/// Point-in-time copy of everything a [`MetricsRegistry`] knows.
///
/// The six pre-existing stats structs survive as the typed views
/// (`engine` carries `CompactionStats`, `TxnStats` and `IntegrityStats`
/// inside it); `counters` additionally holds every one of their fields
/// flattened under `engine_*` / `frontend_*` / `net_*` names, alongside
/// the explicitly registered counters.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Registered counters plus every flattened typed-stats field.
    pub counters: BTreeMap<String, u64>,
    /// Registered gauges with their high-water marks.
    pub gauges: BTreeMap<String, GaugeView>,
    /// Registered histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Typed engine view, when an engine source is installed.
    pub engine: Option<EngineStats>,
    /// Typed frontend view, when a frontend source is installed.
    pub frontend: Option<FrontendStats>,
    /// Typed net view, when a net source is installed.
    pub net: Option<NetStats>,
    /// Health rollup, when a health source is installed.
    pub health: Option<HealthReport>,
}

impl MetricsSnapshot {
    /// Value of a (possibly flattened) counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Render in Prometheus text exposition format (served by
    /// `GET /metrics`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, view) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", view.value);
            let _ = writeln!(out, "# TYPE {name}_high_water gauge");
            let _ = writeln!(out, "{name}_high_water {}", view.high_water);
        }
        for (name, hist) in &self.histograms {
            hist.to_prometheus(name, &mut out);
        }
        out
    }

    /// Render the full snapshot as one JSON object (served by
    /// `GET /stats.json`).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        let mut counters = JsonObject::new();
        for (name, value) in &self.counters {
            counters.number(name, *value);
        }
        obj.raw("counters", &counters.finish());
        let mut gauges = JsonObject::new();
        for (name, view) in &self.gauges {
            let mut entry = JsonObject::new();
            entry.number("value", view.value);
            entry.number("high_water", view.high_water);
            gauges.raw(name, &entry.finish());
        }
        obj.raw("gauges", &gauges.finish());
        let mut hists = JsonObject::new();
        for (name, hist) in &self.histograms {
            let mut entry = JsonObject::new();
            entry.number("count", hist.count());
            entry.number("sum", hist.sum);
            entry.number("min", if hist.is_empty() { 0 } else { hist.min });
            entry.number("max", hist.max);
            entry.raw("mean", &fmt_f64(hist.mean()));
            entry.raw("p50", &fmt_f64(hist.percentile(0.50)));
            entry.raw("p90", &fmt_f64(hist.percentile(0.90)));
            entry.raw("p99", &fmt_f64(hist.percentile(0.99)));
            entry.raw("p999", &fmt_f64(hist.percentile(0.999)));
            hists.raw(name, &entry.finish());
        }
        obj.raw("histograms", &hists.finish());
        if let Some(health) = &self.health {
            obj.raw("health", &health.to_json());
        }
        obj.finish()
    }
}

fn put(map: &mut BTreeMap<String, u64>, name: &str, value: u64) {
    map.insert(name.to_string(), value);
}

fn flatten_engine(stats: &EngineStats, map: &mut BTreeMap<String, u64>) {
    put(map, "engine_reads_from_dram", stats.reads_from_dram);
    put(map, "engine_reads_from_nvm", stats.reads_from_nvm);
    put(map, "engine_reads_from_flash", stats.reads_from_flash);
    put(map, "engine_reads_not_found", stats.reads_not_found);
    put(map, "engine_user_bytes_written", stats.user_bytes_written);
    put(map, "engine_batch_groups", stats.batch_groups);
    put(map, "engine_batch_entries", stats.batch_entries);
    put(map, "engine_batch_merged_writes", stats.batch_merged_writes);
    for (tier, io) in [("nvm", stats.nvm_io), ("flash", stats.flash_io)] {
        put(map, &format!("engine_{tier}_bytes_read"), io.bytes_read);
        put(
            map,
            &format!("engine_{tier}_bytes_written"),
            io.bytes_written,
        );
        put(map, &format!("engine_{tier}_reads"), io.reads);
        put(map, &format!("engine_{tier}_writes"), io.writes);
    }
    let c = &stats.compaction;
    put(map, "engine_compaction_jobs", c.jobs);
    put(
        map,
        "engine_compaction_total_time_ns",
        c.total_time.as_nanos(),
    );
    put(
        map,
        "engine_compaction_fast_tier_time_ns",
        c.fast_tier_time.as_nanos(),
    );
    put(
        map,
        "engine_compaction_slow_tier_time_ns",
        c.slow_tier_time.as_nanos(),
    );
    put(map, "engine_compaction_demoted_objects", c.demoted_objects);
    put(
        map,
        "engine_compaction_promoted_objects",
        c.promoted_objects,
    );
    put(
        map,
        "engine_compaction_stall_time_ns",
        c.stall_time.as_nanos(),
    );
    put(
        map,
        "engine_compaction_overlap_time_ns",
        c.overlap_time.as_nanos(),
    );
    put(
        map,
        "engine_compaction_backpressure_stalls",
        c.backpressure_stalls,
    );
    put(map, "engine_compaction_enqueued_jobs", c.enqueued_jobs);
    put(map, "engine_compaction_queue_depth", c.queue_depth);
    put(map, "engine_compaction_max_queue_depth", c.max_queue_depth);
    let t = &stats.txn;
    put(map, "engine_snapshots", t.snapshots);
    put(map, "engine_txn_commits", t.txn_commits);
    put(map, "engine_txn_conflicts", t.txn_conflicts);
    put(map, "engine_commit_intents", t.commit_intents);
    put(map, "engine_commit_seals", t.commit_seals);
    put(map, "engine_commit_replayed", t.commit_replayed);
    put(map, "engine_commit_rolled_back", t.commit_rolled_back);
    let i = &stats.integrity;
    put(map, "engine_checksum_failures", i.checksum_failures);
    put(map, "engine_io_errors", i.io_errors);
    put(map, "engine_quarantined_objects", i.quarantined_objects);
    put(map, "engine_scrub_repairs", i.scrub_repairs);
    put(map, "engine_scrub_passes", i.scrub_passes);
    put(map, "engine_scrub_clean_passes", i.scrub_clean_passes);
    put(
        map,
        "engine_degraded_write_refusals",
        i.degraded_write_refusals,
    );
    put(map, "engine_degraded_entered", i.degraded_entered);
    put(map, "engine_degraded_recovered", i.degraded_recovered);
    put(map, "engine_snapshots_expired", i.snapshots_expired);
    put(map, "engine_degraded_partitions", i.degraded_partitions);
    for (level, reads) in stats.reads_per_level.iter().enumerate() {
        if *reads > 0 {
            put(map, &format!("engine_reads_level_{level}"), *reads);
        }
    }
}

fn flatten_frontend(stats: &FrontendStats, map: &mut BTreeMap<String, u64>) {
    put(map, "frontend_submitted", stats.submitted);
    put(map, "frontend_completed", stats.completed);
    put(map, "frontend_rejected", stats.rejected);
    put(map, "frontend_coalesced_groups", stats.coalesced_groups);
    put(map, "frontend_coalesced_entries", stats.coalesced_entries);
    put(map, "frontend_wakeups", stats.wakeups);
    put(map, "frontend_stolen_drains", stats.stolen_drains);
    put(map, "frontend_queue_depth", stats.queue_depth);
    put(map, "frontend_max_queue_depth", stats.max_queue_depth);
    put(
        map,
        "frontend_max_total_queue_depth",
        stats.max_total_queue_depth,
    );
    put(
        map,
        "frontend_outstanding_tickets",
        stats.outstanding_tickets,
    );
    put(
        map,
        "frontend_max_outstanding_tickets",
        stats.max_outstanding_tickets,
    );
}

fn flatten_net(stats: &NetStats, map: &mut BTreeMap<String, u64>) {
    put(map, "net_connections_accepted", stats.connections_accepted);
    put(map, "net_connections_closed", stats.connections_closed);
    put(map, "net_frames_received", stats.frames_received);
    put(map, "net_frames_sent", stats.frames_sent);
    put(map, "net_bytes_received", stats.bytes_received);
    put(map, "net_bytes_sent", stats.bytes_sent);
    put(map, "net_protocol_errors", stats.protocol_errors);
    put(
        map,
        "net_backpressure_rejections",
        stats.backpressure_rejections,
    );
    put(map, "net_shutdown_refusals", stats.shutdown_refusals);
    put(map, "net_in_flight", stats.in_flight);
    put(map, "net_max_in_flight", stats.max_in_flight);
    put(map, "net_max_conn_in_flight", stats.max_conn_in_flight);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_shared_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("ops");
        let b = registry.counter("ops");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("ops").get(), 3);

        let gauge = registry.gauge("depth");
        gauge.add(5);
        gauge.sub(3);
        gauge.sub(10);
        assert_eq!(gauge.get(), 0);
        assert_eq!(gauge.high_water(), 5);
    }

    #[test]
    fn snapshot_flattens_typed_sources_and_keeps_views() {
        let registry = MetricsRegistry::new();
        registry.counter("custom_total").add(9);
        registry.histogram("lat_ns").record(500);
        registry.set_engine_source(Box::new(|| {
            let mut stats = EngineStats {
                reads_from_nvm: 4,
                ..EngineStats::default()
            };
            stats.compaction.jobs = 2;
            stats.integrity.scrub_passes = 1;
            Some(stats)
        }));
        registry.set_frontend_source(Box::new(|| {
            Some(FrontendStats {
                submitted: 11,
                ..FrontendStats::default()
            })
        }));
        registry.set_net_source(Box::new(|| {
            Some(NetStats {
                frames_sent: 7,
                ..NetStats::default()
            })
        }));
        registry.set_health_source(Box::new(|| {
            Some(HealthReport {
                partitions: vec![
                    ShardHealthView {
                        shard: 0,
                        health: PartitionHealth::Healthy,
                    },
                    ShardHealthView {
                        shard: 1,
                        health: PartitionHealth::Degraded,
                    },
                ],
                quarantined_objects: 3,
                outstanding_tickets: 2,
            })
        }));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("custom_total"), Some(9));
        assert_eq!(snap.counter("engine_reads_from_nvm"), Some(4));
        assert_eq!(snap.counter("engine_compaction_jobs"), Some(2));
        assert_eq!(snap.counter("engine_scrub_passes"), Some(1));
        assert_eq!(snap.counter("frontend_submitted"), Some(11));
        assert_eq!(snap.counter("net_frames_sent"), Some(7));
        // Typed views survive unchanged.
        assert_eq!(snap.engine.unwrap().reads_from_nvm, 4);
        assert_eq!(snap.frontend.unwrap().submitted, 11);
        assert_eq!(snap.net.unwrap().frames_sent, 7);
        let health = snap.health.as_ref().unwrap();
        assert!(!health.healthy());
        assert_eq!(health.degraded_partitions(), 1);
        assert_eq!(snap.histogram("lat_ns").unwrap().count(), 1);

        let text = snap.to_prometheus();
        assert!(text.contains("engine_reads_from_nvm 4"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        let json = snap.to_json();
        assert!(json.contains("\"frontend_submitted\":11"));
        assert!(json.contains("\"health\":{\"healthy\":false"));
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn health_report_json_shape() {
        let report = HealthReport {
            partitions: vec![ShardHealthView {
                shard: 0,
                health: PartitionHealth::Healthy,
            }],
            quarantined_objects: 0,
            outstanding_tickets: 5,
        };
        let json = report.to_json();
        assert!(json.contains("\"healthy\":true"));
        assert!(json.contains("\"outstanding_tickets\":5"));
        assert!(json.contains("{\"partition\":0,\"health\":\"healthy\"}"));
    }
}
