//! Workspace-wide observability for the PrismDB reproduction.
//!
//! The paper's headline claims are tail-latency claims, so the system
//! needs one consistent latency surface instead of per-experiment
//! percentile plumbing. This crate provides it in three parts:
//!
//! * [`LatencyHistogram`] — a lock-free log-bucketed histogram
//!   (~2 buckets/octave, 100 ns – 10 s) recording is one relaxed atomic
//!   add; any reported percentile is within one bucket (×√2) of the true
//!   order statistic. The bench runner, the frontend's per-stage timers
//!   and the engine's per-tier read timers all record into this one
//!   type, so benches and production serve the same numbers.
//! * [`MetricsRegistry`] / [`MetricsSnapshot`] — named counters, gauges
//!   (with built-in high-water marks) and histograms, plus typed sources
//!   for the six pre-existing stats structs. One snapshot yields the
//!   typed views *and* a flattened name→value map, rendered as
//!   Prometheus text or JSON.
//! * [`TraceBuffer`] — a bounded ring of structured [`TraceEvent`]s
//!   (compaction pipeline transitions, health flips, snapshot expiry,
//!   back-pressure stalls, connection lifecycle), dumpable as JSON
//!   lines.
//!
//! [`ObsHub`] bundles a registry and a trace buffer; the layers share
//! one hub (`prism-core` creates a private hub unless
//! `Options::obs` supplies one; `prism-frontend` / `prism-net` accept a
//! hub in their `start_with_obs` constructors) and `prism-net`'s admin
//! plane serves the hub over HTTP (`GET /metrics`, `/stats.json`,
//! `/health`, `/trace?last=N`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use prism_obs::ObsHub;
//!
//! let hub = Arc::new(ObsHub::new());
//! let hist = hub.registry.histogram("frontend_e2e_get_ns");
//! hist.record(12_345);
//! hub.trace.record("conn_open", None, 1, "peer=test");
//! let snap = hub.registry.snapshot();
//! assert_eq!(snap.histogram("frontend_e2e_get_ns").unwrap().count(), 1);
//! assert_eq!(hub.trace.last(10).len(), 1);
//! ```

pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use hist::{
    bucket_index, HistogramSnapshot, LatencyHistogram, BOUNDS, HIGHEST_BOUND, LOWEST_BOUND,
    NUM_BOUNDS, NUM_BUCKETS,
};
pub use registry::{
    Counter, Gauge, GaugeView, HealthReport, MetricsRegistry, MetricsSnapshot, ShardHealthView,
};
pub use trace::{TraceBuffer, TraceEvent};

/// Default number of trace events an [`ObsHub`] retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One shared observability hub: a metrics registry plus a trace buffer.
///
/// Create one `Arc<ObsHub>` per deployment and hand it to every layer
/// (`Options::obs`, `Frontend::start_with_obs`,
/// `NetServer::start_with_obs`, `AdminServer::start`); each layer
/// registers its instruments and typed sources into the hub, and the
/// admin plane serves the union.
#[derive(Debug)]
pub struct ObsHub {
    /// Named instruments and typed stats sources.
    pub registry: MetricsRegistry,
    /// Bounded structured event trace.
    pub trace: TraceBuffer,
}

impl Default for ObsHub {
    fn default() -> Self {
        ObsHub::new()
    }
}

impl ObsHub {
    /// A hub with the default trace capacity.
    pub fn new() -> Self {
        ObsHub::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A hub retaining the last `capacity` trace events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        ObsHub {
            registry: MetricsRegistry::new(),
            trace: TraceBuffer::new(capacity),
        }
    }
}
