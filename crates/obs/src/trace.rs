//! A bounded ring-buffer structured event trace.
//!
//! [`TraceBuffer`] keeps the last N [`TraceEvent`]s recorded anywhere in
//! the process: compaction pipeline transitions, partition health flips,
//! snapshot-pin expiry, back-pressure stalls, connection lifecycle. Each
//! event carries a monotonic sequence number, a category string, an
//! optional partition, an op/job/connection id, and a free-form payload.
//! The buffer is queryable in memory ([`TraceBuffer::last`],
//! [`TraceBuffer::in_category`]) and dumpable as JSON lines
//! ([`TraceBuffer::dump_json_lines`]) — the format the admin plane's
//! `GET /trace?last=N` endpoint serves.
//!
//! # Example
//!
//! ```
//! use prism_obs::trace::{category, TraceBuffer};
//!
//! let trace = TraceBuffer::new(128);
//! trace.record(category::COMPACTION_INSTALL, Some(3), 17, "files=2");
//! let events = trace.last(10);
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].category, category::COMPACTION_INSTALL);
//! assert!(events[0].to_json_line().contains("\"partition\":3"));
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::{escape_into, JsonObject};

/// Well-known event category names. Categories are plain strings so
/// layers can add their own, but sharing these constants keeps the
/// admin-plane output greppable.
pub mod category {
    /// A compaction job was planned and enqueued.
    pub const COMPACTION_PLAN: &str = "compaction_plan";
    /// A background worker started executing a compaction job.
    pub const COMPACTION_EXECUTE: &str = "compaction_execute";
    /// A compaction result was installed into its partition.
    pub const COMPACTION_INSTALL: &str = "compaction_install";
    /// A compaction result was discarded at install (stale epoch /
    /// retired inputs) and the work will be re-planned.
    pub const COMPACTION_DISCARD: &str = "compaction_discard";
    /// An object was quarantined after a checksum failure.
    pub const QUARANTINE: &str = "quarantine";
    /// A partition entered degraded (read-only) mode.
    pub const DEGRADED: &str = "degraded";
    /// A clean scrub pass returned a degraded partition to healthy.
    pub const REARM: &str = "rearm";
    /// A scrub pass completed.
    pub const SCRUB_PASS: &str = "scrub_pass";
    /// A snapshot pin was expired by the history caps.
    pub const SNAPSHOT_EXPIRED: &str = "snapshot_expired";
    /// A foreground write stalled on the compaction back-pressure
    /// ceiling.
    pub const BACKPRESSURE: &str = "backpressure";
    /// A network connection was accepted.
    pub const CONN_OPEN: &str = "conn_open";
    /// A network connection was fully torn down.
    pub const CONN_CLOSE: &str = "conn_close";
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number, unique per [`TraceBuffer`]. Gaps in a
    /// dump mean older events were overwritten by the ring.
    pub seq: u64,
    /// Event category (see [`category`] for the well-known names).
    pub category: &'static str,
    /// Partition the event concerns, if any.
    pub partition: Option<u32>,
    /// Op / job / connection identifier (0 when not applicable).
    pub id: u64,
    /// Free-form human-readable detail.
    pub payload: String,
}

impl TraceEvent {
    /// Render the event as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut obj = JsonObject::new();
        obj.number("seq", self.seq);
        obj.string("category", self.category);
        match self.partition {
            Some(p) => obj.number("partition", u64::from(p)),
            None => obj.raw("partition", "null"),
        }
        obj.number("id", self.id);
        let mut escaped = String::new();
        escape_into(&self.payload, &mut escaped);
        obj.raw("payload", &format!("\"{escaped}\""));
        obj.finish()
    }
}

/// A bounded ring of the most recent [`TraceEvent`]s.
///
/// Recording takes one short mutex; the buffer is meant for coarse
/// lifecycle events (compactions, health flips, connections), not
/// per-request tracing, so the lock is never hot.
pub struct TraceBuffer {
    seq: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl TraceBuffer {
    /// A buffer retaining the last `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            seq: AtomicU64::new(0),
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceEvent>> {
        self.ring
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Append an event, evicting the oldest once the ring is full.
    /// Returns the event's sequence number.
    pub fn record(
        &self,
        category: &'static str,
        partition: Option<u32>,
        id: u64,
        payload: impl Into<String>,
    ) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            category,
            partition,
            id,
            payload: payload.into(),
        };
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
        seq
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent `n` events, oldest first.
    pub fn last(&self, n: usize) -> Vec<TraceEvent> {
        let ring = self.lock();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Retained events matching `category`, oldest first.
    pub fn in_category(&self, category: &str) -> Vec<TraceEvent> {
        self.lock()
            .iter()
            .filter(|e| e.category == category)
            .cloned()
            .collect()
    }

    /// The most recent `n` retained events as JSON lines (one object per
    /// line, oldest first).
    pub fn dump_json_lines(&self, n: usize) -> String {
        let mut out = String::new();
        for event in self.last(n) {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq_monotone() {
        let trace = TraceBuffer::new(4);
        for i in 0..10u64 {
            trace.record(category::BACKPRESSURE, Some(1), i, format!("i={i}"));
        }
        assert_eq!(trace.recorded(), 10);
        assert_eq!(trace.len(), 4);
        let events = trace.last(100);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn last_returns_tail_in_order() {
        let trace = TraceBuffer::new(8);
        for i in 0..5u64 {
            trace.record(category::CONN_OPEN, None, i, "");
        }
        let tail = trace.last(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 3);
        assert_eq!(tail[1].seq, 4);
    }

    #[test]
    fn category_filter_and_json_lines() {
        let trace = TraceBuffer::new(8);
        trace.record(category::COMPACTION_PLAN, Some(0), 1, "jobs=1");
        trace.record(category::COMPACTION_INSTALL, Some(0), 1, "say \"hi\"");
        assert_eq!(trace.in_category(category::COMPACTION_INSTALL).len(), 1);
        let dump = trace.dump_json_lines(10);
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("\"category\":\"compaction_install\""));
        assert!(dump.contains("say \\\"hi\\\""));
        let no_partition = TraceBuffer::new(2);
        no_partition.record(category::CONN_CLOSE, None, 3, "");
        assert!(no_partition
            .dump_json_lines(1)
            .contains("\"partition\":null"));
    }
}
