//! In-memory B-tree index.
//!
//! PrismDB keeps an in-memory B-tree per partition that maps every key
//! currently stored on NVM to its slab address (§4.1 of the paper, "Google's
//! B-tree implementation" in §6). This crate provides that index as a
//! from-scratch B+-tree: values live only in the leaves, internal nodes hold
//! routing separators, and deletion is lazy (keys are removed from leaves
//! without rebalancing, which keeps bulk removals during compaction cheap
//! while preserving `O(log n)` lookups).
//!
//! # Example
//!
//! ```
//! use prism_index::BTreeIndex;
//!
//! let mut index: BTreeIndex<u64, &str> = BTreeIndex::new();
//! index.insert(3, "c");
//! index.insert(1, "a");
//! index.insert(2, "b");
//! assert_eq!(index.get(&2), Some(&"b"));
//! let keys: Vec<u64> = index.range_from(&2).map(|(k, _)| *k).collect();
//! assert_eq!(keys, vec![2, 3]);
//! ```

mod btree;
mod point;

pub use btree::{BTreeIndex, Range};
pub use point::{FastIndex, HashDirectory};

#[cfg(test)]
mod proptests {
    use super::{BTreeIndex, FastIndex, HashDirectory};
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        /// The combined index (tree + directory, mutations mirrored
        /// internally) behaves exactly like the ordered model for point
        /// lookups, membership, removal *and* ordered range iteration.
        #[test]
        fn fast_index_matches_model(
            ops in prop::collection::vec((0u8..3, 0u64..200, 0u32..1000), 0..400),
            start in 0u64..200
        ) {
            let mut ours: FastIndex<u64, u32> = FastIndex::new();
            let mut model: BTreeMap<u64, u32> = BTreeMap::new();
            for (op, key, value) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(ours.insert(key, value), model.insert(key, value));
                    }
                    1 => {
                        prop_assert_eq!(ours.remove(&key), model.remove(&key));
                    }
                    _ => {
                        prop_assert_eq!(ours.get(&key), model.get(&key));
                        prop_assert_eq!(ours.contains_key(&key), model.contains_key(&key));
                    }
                }
                prop_assert_eq!(ours.len(), model.len());
            }
            let got: Vec<(u64, u32)> = ours.range_from(&start).map(|(k, v)| (*k, *v)).collect();
            let expected: Vec<(u64, u32)> =
                model.range(start..).map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, expected);
        }

        /// The point-lookup fast path, maintained alongside the B+-tree the
        /// way the partition maintains it (every insert/remove mirrored),
        /// never returns a stale or missing version: after any interleaving
        /// of operations, every lookup agrees with the ordered oracle.
        #[test]
        fn hash_directory_never_serves_stale_versions(
            ops in prop::collection::vec((0u8..3, 0u64..200, 0u32..1000), 0..400)
        ) {
            let mut tree: BTreeIndex<u64, u32> = BTreeIndex::with_order(8);
            let mut fast: HashDirectory<u64, u32> = HashDirectory::with_ways(8);
            for (op, key, value) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(tree.insert(key, value), fast.insert(key, value));
                    }
                    1 => {
                        prop_assert_eq!(tree.remove(&key), fast.remove(&key));
                    }
                    _ => {
                        prop_assert_eq!(tree.get(&key), fast.get(&key));
                    }
                }
                prop_assert_eq!(tree.len(), fast.len());
            }
            for (key, value) in tree.iter() {
                prop_assert_eq!(fast.get(key), Some(value));
            }
        }
        /// The B-tree behaves exactly like the standard-library ordered map
        /// under an arbitrary interleaving of inserts, removals and lookups.
        #[test]
        fn matches_std_btreemap(ops in prop::collection::vec((0u8..3, 0u64..200, 0u32..1000), 0..400)) {
            let mut ours: BTreeIndex<u64, u32> = BTreeIndex::with_order(8);
            let mut model: BTreeMap<u64, u32> = BTreeMap::new();
            for (op, key, value) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(ours.insert(key, value), model.insert(key, value));
                    }
                    1 => {
                        prop_assert_eq!(ours.remove(&key), model.remove(&key));
                    }
                    _ => {
                        prop_assert_eq!(ours.get(&key), model.get(&key));
                    }
                }
                prop_assert_eq!(ours.len(), model.len());
            }
            let ours_items: Vec<(u64, u32)> = ours.iter().map(|(k, v)| (*k, *v)).collect();
            let model_items: Vec<(u64, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(ours_items, model_items);
        }

        /// Range iteration from an arbitrary start key returns exactly the
        /// suffix the standard map would return, in order.
        #[test]
        fn range_matches_model(keys in prop::collection::btree_set(0u64..500, 0..200), start in 0u64..500) {
            let mut ours: BTreeIndex<u64, u64> = BTreeIndex::with_order(6);
            for &k in &keys {
                ours.insert(k, k * 10);
            }
            let got: Vec<u64> = ours.range_from(&start).map(|(k, _)| *k).collect();
            let expected: Vec<u64> = keys.iter().copied().filter(|k| *k >= start).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
