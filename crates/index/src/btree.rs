//! B+-tree implementation backing [`BTreeIndex`].

const DEFAULT_ORDER: usize = 32;
const MIN_ORDER: usize = 4;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
    },
    Internal {
        /// Routing separators; `children[i]` holds keys `< keys[i]`,
        /// `children[i + 1]` holds keys `>= keys[i]`.
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

impl<K: Ord + Clone, V> Node<K, V> {
    fn new_leaf() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }
}

/// An ordered in-memory index mapping keys to values.
///
/// See the crate-level documentation for the role this plays in PrismDB.
/// The tree stores values only in leaf nodes (B+-tree layout), splits nodes
/// at a configurable order, and performs lazy deletion.
#[derive(Debug, Clone)]
pub struct BTreeIndex<K, V> {
    root: Node<K, V>,
    len: usize,
    order: usize,
}

impl<K: Ord + Clone, V> Default for BTreeIndex<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

enum InsertResult<K, V> {
    Done(Option<V>),
    Split {
        replaced: Option<V>,
        separator: K,
        right: Node<K, V>,
    },
}

impl<K: Ord + Clone, V> BTreeIndex<K, V> {
    /// Create an empty index with the default node order (32 keys/node).
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Create an empty index whose nodes hold at most `order` keys.
    ///
    /// # Panics
    ///
    /// Panics if `order < 4`; smaller orders cannot split meaningfully.
    pub fn with_order(order: usize) -> Self {
        assert!(
            order >= MIN_ORDER,
            "B-tree order must be at least {MIN_ORDER}"
        );
        BTreeIndex {
            root: Node::new_leaf(),
            len: 0,
            order,
        }
    }

    /// Number of key-value pairs in the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(key).ok().map(|i| &vals[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|sep| sep <= key);
                    node = &children[idx];
                }
            }
        }
    }

    /// Look up a key and return a mutable reference to its value.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(key).ok().map(|i| &mut vals[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|sep| sep <= key);
                    node = &mut children[idx];
                }
            }
        }
    }

    /// True if the index contains `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Insert a key-value pair, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let order = self.order;
        match Self::insert_into(&mut self.root, key, value, order) {
            InsertResult::Done(replaced) => {
                if replaced.is_none() {
                    self.len += 1;
                }
                replaced
            }
            InsertResult::Split {
                replaced,
                separator,
                right,
            } => {
                if replaced.is_none() {
                    self.len += 1;
                }
                let old_root = std::mem::replace(&mut self.root, Node::new_leaf());
                self.root = Node::Internal {
                    keys: vec![separator],
                    children: vec![old_root, right],
                };
                replaced
            }
        }
    }

    fn insert_into(node: &mut Node<K, V>, key: K, value: V, order: usize) -> InsertResult<K, V> {
        match node {
            Node::Leaf { keys, vals } => {
                let replaced = match keys.binary_search(&key) {
                    Ok(i) => Some(std::mem::replace(&mut vals[i], value)),
                    Err(i) => {
                        keys.insert(i, key);
                        vals.insert(i, value);
                        None
                    }
                };
                if keys.len() > order {
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_vals = vals.split_off(mid);
                    let separator = right_keys[0].clone();
                    InsertResult::Split {
                        replaced,
                        separator,
                        right: Node::Leaf {
                            keys: right_keys,
                            vals: right_vals,
                        },
                    }
                } else {
                    InsertResult::Done(replaced)
                }
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|sep| sep <= &key);
                match Self::insert_into(&mut children[idx], key, value, order) {
                    InsertResult::Done(replaced) => InsertResult::Done(replaced),
                    InsertResult::Split {
                        replaced,
                        separator,
                        right,
                    } => {
                        keys.insert(idx, separator);
                        children.insert(idx + 1, right);
                        if keys.len() > order {
                            let mid = keys.len() / 2;
                            let promote = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop();
                            let right_children = children.split_off(mid + 1);
                            InsertResult::Split {
                                replaced,
                                separator: promote,
                                right: Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                },
                            }
                        } else {
                            InsertResult::Done(replaced)
                        }
                    }
                }
            }
        }
    }

    /// Remove a key, returning its value if it was present.
    ///
    /// Removal is lazy: the entry is deleted from its leaf but nodes are not
    /// rebalanced or merged, so the tree height never decreases. This trades
    /// a small memory overhead for very cheap bulk removals, which is the
    /// pattern compactions produce (removing an entire demoted key range).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return match keys.binary_search(key) {
                        Ok(i) => {
                            keys.remove(i);
                            let removed = vals.remove(i);
                            self.len -= 1;
                            Some(removed)
                        }
                        Err(_) => None,
                    };
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|sep| sep <= key);
                    node = &mut children[idx];
                }
            }
        }
    }

    /// Iterate over all entries in ascending key order.
    pub fn iter(&self) -> Range<'_, K, V> {
        Range::new(&self.root, None, None)
    }

    /// Iterate over entries with keys `>= start`, ascending.
    pub fn range_from<'a>(&'a self, start: &K) -> Range<'a, K, V> {
        Range::new(&self.root, Some(start), None)
    }

    /// Iterate over entries with keys in `[start, end)`, ascending.
    pub fn range<'a>(&'a self, start: &K, end: &K) -> Range<'a, K, V> {
        Range::new(&self.root, Some(start), Some(end.clone()))
    }

    /// The smallest key in the index, if any.
    pub fn first_key(&self) -> Option<&K> {
        self.iter().next().map(|(k, _)| k)
    }

    /// The largest key in the index, if any.
    ///
    /// The rightmost subtrees may be empty after lazy deletes, so this scans
    /// children right-to-left rather than only descending the last child.
    pub fn last_key(&self) -> Option<&K> {
        Self::last_key_of(&self.root)
    }

    fn last_key_of(node: &Node<K, V>) -> Option<&K> {
        match node {
            Node::Leaf { keys, .. } => keys.last(),
            Node::Internal { children, .. } => {
                for child in children.iter().rev() {
                    if let Some(k) = Self::last_key_of(child) {
                        return Some(k);
                    }
                }
                None
            }
        }
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.root = Node::new_leaf();
        self.len = 0;
    }
}

struct Frame<'a, K, V> {
    node: &'a Node<K, V>,
    idx: usize,
}

/// Ascending iterator over a key range of a [`BTreeIndex`].
pub struct Range<'a, K, V> {
    stack: Vec<Frame<'a, K, V>>,
    end: Option<K>,
}

impl<'a, K: Ord + Clone, V> Range<'a, K, V> {
    fn new(root: &'a Node<K, V>, start: Option<&K>, end: Option<K>) -> Self {
        let mut stack = Vec::new();
        let mut node = root;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = match start {
                        Some(s) => keys.partition_point(|sep| sep <= s),
                        None => 0,
                    };
                    stack.push(Frame { node, idx: idx + 1 });
                    node = &children[idx];
                }
                Node::Leaf { keys, .. } => {
                    let idx = match start {
                        Some(s) => keys.partition_point(|k| k < s),
                        None => 0,
                    };
                    stack.push(Frame { node, idx });
                    break;
                }
            }
        }
        Range { stack, end }
    }
}

impl<'a, K: Ord + Clone, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, idx) = {
                let frame = self.stack.last()?;
                (frame.node, frame.idx)
            };
            match node {
                Node::Leaf { keys, vals } => {
                    if idx < keys.len() {
                        self.stack.last_mut().expect("frame present").idx += 1;
                        let key = &keys[idx];
                        if let Some(end) = &self.end {
                            if key >= end {
                                self.stack.clear();
                                return None;
                            }
                        }
                        return Some((key, &vals[idx]));
                    }
                    self.stack.pop();
                }
                Node::Internal { children, .. } => {
                    if idx < children.len() {
                        self.stack.last_mut().expect("frame present").idx += 1;
                        self.stack.push(Frame {
                            node: &children[idx],
                            idx: 0,
                        });
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_replace() {
        let mut t = BTreeIndex::with_order(4);
        assert!(t.is_empty());
        assert_eq!(t.insert(10, "a"), None);
        assert_eq!(t.insert(20, "b"), None);
        assert_eq!(t.insert(10, "c"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&10), Some(&"c"));
        assert_eq!(t.get(&20), Some(&"b"));
        assert_eq!(t.get(&30), None);
        assert!(t.contains_key(&20));
    }

    #[test]
    fn splits_maintain_order_across_many_inserts() {
        let mut t = BTreeIndex::with_order(4);
        let n = 2_000u64;
        for i in 0..n {
            // Insert in a scrambled order to exercise splits on both sides.
            let key = (i * 7919) % n;
            t.insert(key, key * 2);
        }
        assert_eq!(t.len() as u64, n);
        let collected: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        let expected: Vec<u64> = (0..n).collect();
        assert_eq!(collected, expected);
        for i in (0..n).step_by(97) {
            assert_eq!(t.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn remove_returns_values_and_shrinks_len() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..100u64 {
            t.insert(i, i);
        }
        for i in (0..100u64).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
        }
        assert_eq!(t.remove(&2), None);
        assert_eq!(t.len(), 50);
        let remaining: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert!(remaining.iter().all(|k| k % 2 == 1));
        assert_eq!(remaining.len(), 50);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = BTreeIndex::new();
        t.insert(5u64, 100u64);
        *t.get_mut(&5).unwrap() += 1;
        assert_eq!(t.get(&5), Some(&101));
        assert!(t.get_mut(&6).is_none());
    }

    #[test]
    fn range_from_and_bounded_range() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..50u64 {
            t.insert(i * 2, i);
        }
        let from: Vec<u64> = t.range_from(&31).map(|(k, _)| *k).collect();
        assert_eq!(from.first(), Some(&32));
        assert_eq!(from.last(), Some(&98));
        let bounded: Vec<u64> = t.range(&10, &20).map(|(k, _)| *k).collect();
        assert_eq!(bounded, vec![10, 12, 14, 16, 18]);
        let empty: Vec<u64> = t.range(&200, &300).map(|(k, _)| *k).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn first_and_last_key() {
        let mut t = BTreeIndex::with_order(4);
        assert_eq!(t.first_key(), None);
        assert_eq!(t.last_key(), None);
        for i in [5u64, 1, 9, 3, 200, 42] {
            t.insert(i, ());
        }
        assert_eq!(t.first_key(), Some(&1));
        assert_eq!(t.last_key(), Some(&200));
        t.remove(&200);
        assert_eq!(t.last_key(), Some(&42));
    }

    #[test]
    fn clear_empties_the_tree() {
        let mut t = BTreeIndex::new();
        for i in 0..500u64 {
            t.insert(i, i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        t.insert(1, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "order must be at least")]
    fn rejects_tiny_order() {
        let _ = BTreeIndex::<u64, ()>::with_order(2);
    }

    #[test]
    fn string_keys_work() {
        let mut t: BTreeIndex<String, usize> = BTreeIndex::with_order(4);
        for (i, name) in ["delta", "alpha", "charlie", "bravo"].iter().enumerate() {
            t.insert((*name).to_string(), i);
        }
        let names: Vec<&str> = t.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["alpha", "bravo", "charlie", "delta"]);
    }
}
