//! Hash-directory point-lookup fast path.
//!
//! The per-partition B+-tree gives `O(log n)` ordered lookups and range
//! scans, but a YCSB-C point read pays the full root-to-leaf walk for a
//! single key. CompassDB reports 2.8× RocksDB point-read throughput from a
//! perfect-hash index consulted before the ordered structure; this module
//! is the same idea with a plainer construction: a *hash directory* — a
//! fixed fan-out of hash-map ways selected by key hash — maintained
//! alongside the B+-tree and probed first on the point-read path. Probes
//! are `O(1)`, `&self` and touch exactly one way, so concurrent readers
//! under the partition read lock never contend; all mutation happens with
//! `&mut self` under the partition write lock, mirroring every B+-tree
//! insert/remove.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use crate::btree::{BTreeIndex, Range};

const DEFAULT_WAYS: usize = 16;

/// A point-lookup directory: key-hash → way → entry.
///
/// Behaves like a `HashMap` with a bounded per-way footprint; the directory
/// fan-out keeps rehashes incremental (one way at a time) instead of
/// stop-the-world over the whole partition's key population.
#[derive(Debug, Clone)]
pub struct HashDirectory<K, V> {
    ways: Vec<HashMap<K, V, BuildHasherDefault<DefaultHasher>>>,
}

impl<K: Hash + Eq, V> Default for HashDirectory<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V> HashDirectory<K, V> {
    /// Create a directory with the default fan-out (16 ways).
    pub fn new() -> Self {
        Self::with_ways(DEFAULT_WAYS)
    }

    /// Create a directory with `ways` hash-map ways (clamped to at least 1).
    pub fn with_ways(ways: usize) -> Self {
        let ways = ways.max(1);
        HashDirectory {
            ways: (0..ways).map(|_| HashMap::default()).collect(),
        }
    }

    /// Number of ways in the directory.
    pub fn way_count(&self) -> usize {
        self.ways.len()
    }

    fn way_of(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.ways.len() as u64) as usize
    }

    /// Total entries across all ways.
    pub fn len(&self) -> usize {
        self.ways.iter().map(HashMap::len).sum()
    }

    /// True if the directory holds no entries.
    pub fn is_empty(&self) -> bool {
        self.ways.iter().all(HashMap::is_empty)
    }

    /// `O(1)` point lookup: one hash, one way, one probe.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.ways[self.way_of(key)].get(key)
    }

    /// True if the directory contains `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Insert or replace an entry, returning the previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let way = self.way_of(&key);
        self.ways[way].insert(key, value)
    }

    /// Remove an entry, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let way = self.way_of(key);
        self.ways[way].remove(key)
    }

    /// Remove every entry, keeping the way allocation.
    pub fn clear(&mut self) {
        for way in &mut self.ways {
            way.clear();
        }
    }
}

/// An ordered index with a point-lookup fast path: a [`BTreeIndex`] for
/// range scans plus a [`HashDirectory`] mirror consulted for point reads.
///
/// Every mutation updates both structures, so the directory is never stale
/// with respect to the tree; `get`/`contains_key` cost one hash probe
/// instead of a root-to-leaf walk, while `range_from` keeps the tree's
/// ordered iteration. Values are stored in both structures (`V: Clone`),
/// which is cheap for the slab-address entries PrismDB indexes.
#[derive(Debug, Clone)]
pub struct FastIndex<K, V> {
    tree: BTreeIndex<K, V>,
    point: HashDirectory<K, V>,
}

impl<K: Ord + Hash + Eq + Clone, V: Clone> Default for FastIndex<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Hash + Eq + Clone, V: Clone> FastIndex<K, V> {
    /// Create an empty index with the default directory fan-out.
    pub fn new() -> Self {
        FastIndex {
            tree: BTreeIndex::new(),
            point: HashDirectory::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// `O(1)` point lookup via the hash directory.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.point.get(key)
    }

    /// `O(1)` membership test via the hash directory.
    pub fn contains_key(&self, key: &K) -> bool {
        self.point.contains_key(key)
    }

    /// Insert or replace an entry in both structures.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.tree.insert(key.clone(), value.clone());
        self.point.insert(key, value)
    }

    /// Remove an entry from both structures.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.tree.remove(key);
        self.point.remove(key)
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.tree.clear();
        self.point.clear();
    }

    /// Ordered iteration over all entries (tree-backed).
    pub fn iter(&self) -> Range<'_, K, V> {
        self.tree.iter()
    }

    /// Ordered iteration from `start` (inclusive, tree-backed).
    pub fn range_from<'a>(&'a self, start: &K) -> Range<'a, K, V> {
        self.tree.range_from(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace_remove() {
        let mut d: HashDirectory<u64, &str> = HashDirectory::new();
        assert!(d.is_empty());
        assert_eq!(d.insert(1, "a"), None);
        assert_eq!(d.insert(2, "b"), None);
        assert_eq!(d.insert(1, "c"), Some("a"));
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(&1), Some(&"c"));
        assert!(d.contains_key(&2));
        assert_eq!(d.get(&3), None);
        assert_eq!(d.remove(&1), Some("c"));
        assert_eq!(d.remove(&1), None);
        assert_eq!(d.len(), 1);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn entries_spread_over_ways() {
        let mut d: HashDirectory<u64, u64> = HashDirectory::with_ways(8);
        for id in 0..512u64 {
            d.insert(id, id);
        }
        assert_eq!(d.way_count(), 8);
        assert_eq!(d.len(), 512);
        // No single way should hold everything.
        let max_way = d.ways.iter().map(HashMap::len).max().unwrap();
        assert!(max_way < 512, "all keys landed in one way");
        for id in 0..512u64 {
            assert_eq!(d.get(&id), Some(&id));
        }
    }

    #[test]
    fn zero_ways_clamps_to_one() {
        let mut d: HashDirectory<u64, ()> = HashDirectory::with_ways(0);
        assert_eq!(d.way_count(), 1);
        d.insert(7, ());
        assert!(d.contains_key(&7));
    }
}
