//! The multi-bit clock tracker.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

use prism_types::Key;

/// Maximum clock value (two clock bits).
pub const MAX_CLOCK: u8 = 3;

/// One tracked key's state. The clock value and location bit are atomics
/// so the read path can re-heat an already-tracked key ([`ClockTracker::touch`])
/// without the partition write lock; structural changes (inserts, ring
/// management, evictions) still require `&mut self`.
#[derive(Debug)]
struct Entry {
    clock: AtomicU8,
    on_flash: AtomicBool,
}

/// What happened to the tracker state as a result of one access.
///
/// The [`crate::Mapper`] consumes these events to keep its clock-value
/// histogram in sync without the tracker and the mapper sharing state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessEvent {
    /// The previous clock value of the accessed key, if it was tracked.
    pub old_clock: Option<u8>,
    /// The new clock value of the accessed key.
    pub new_clock: u8,
    /// Keys that were evicted, with their clock value at eviction time
    /// (always 0 with the clock policy) — reported so callers can clear
    /// per-key popularity bits.
    pub evicted: Option<(Key, u8)>,
    /// Clock values decremented during the eviction sweep, as
    /// `(from, count)` pairs aggregated per starting value.
    pub decremented: Vec<(u8, u64)>,
}

/// A capacity-bounded popularity tracker using the multi-bit clock
/// algorithm.
///
/// * New keys enter with clock value 0 (minimum popularity).
/// * A subsequent access sets the clock value to [`MAX_CLOCK`].
/// * When the tracker is full, the clock hand sweeps the ring, decrementing
///   non-zero clock values until it finds a value-0 entry to evict.
///
/// The tracker also records one location bit per key (whether the latest
/// version of the object lives on flash), which read-triggered compaction
/// uses to detect read-heavy workloads whose hot set sits on flash.
#[derive(Debug)]
pub struct ClockTracker {
    capacity: usize,
    map: HashMap<Key, Entry>,
    ring: Vec<Key>,
    hand: usize,
}

impl ClockTracker {
    /// Create a tracker that holds at most `capacity` keys.
    ///
    /// The paper sizes the tracker at 10–20 % of the total key count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracker capacity must be non-zero");
        ClockTracker {
            capacity,
            map: HashMap::with_capacity(capacity),
            ring: Vec::with_capacity(capacity),
            hand: 0,
        }
    }

    /// Maximum number of tracked keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of tracked keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The clock value of `key`, if tracked.
    pub fn clock_of(&self, key: &Key) -> Option<u8> {
        self.map.get(key).map(|e| e.clock.load(Ordering::Relaxed))
    }

    /// True if the tracked key's latest version is recorded as living on
    /// flash.
    pub fn is_on_flash(&self, key: &Key) -> Option<bool> {
        self.map
            .get(key)
            .map(|e| e.on_flash.load(Ordering::Relaxed))
    }

    /// Update the location bit of a tracked key (e.g. after a demotion or
    /// promotion); does nothing if the key is not tracked.
    pub fn set_location(&self, key: &Key, on_flash: bool) {
        if let Some(entry) = self.map.get(key) {
            entry.on_flash.store(on_flash, Ordering::Relaxed);
        }
    }

    /// Fraction of tracked keys whose latest version lives on flash.
    pub fn flash_fraction(&self) -> f64 {
        if self.map.is_empty() {
            return 0.0;
        }
        let on_flash = self
            .map
            .values()
            .filter(|e| e.on_flash.load(Ordering::Relaxed))
            .count();
        on_flash as f64 / self.map.len() as f64
    }

    /// Re-heat an already-tracked key without the write lock: atomically
    /// swap its clock value to [`MAX_CLOCK`], refresh the location bit and
    /// return the previous clock value. Returns `None` (and changes
    /// nothing) if the key is not tracked — the caller defers such
    /// accesses to the structural [`ClockTracker::access`] path.
    ///
    /// Safe against concurrent touches of the same key: the swap
    /// serialises the clock transitions, so exactly one racing touch
    /// observes each pre-`MAX` value (keeping the mapper's histogram
    /// exact). Structural changes never race with touches because they
    /// require `&mut self` (the partition write lock).
    pub fn touch(&self, key: &Key, on_flash: bool) -> Option<u8> {
        let entry = self.map.get(key)?;
        entry.on_flash.store(on_flash, Ordering::Relaxed);
        Some(entry.clock.swap(MAX_CLOCK, Ordering::Relaxed))
    }

    /// Record an access to `key`, inserting it if necessary (possibly
    /// evicting a cold key) and returning the resulting state changes.
    pub fn access(&mut self, key: &Key, on_flash: bool) -> AccessEvent {
        if let Some(entry) = self.map.get_mut(key) {
            let old = entry.clock.swap(MAX_CLOCK, Ordering::Relaxed);
            entry.on_flash.store(on_flash, Ordering::Relaxed);
            return AccessEvent {
                old_clock: Some(old),
                new_clock: MAX_CLOCK,
                evicted: None,
                decremented: Vec::new(),
            };
        }

        let mut evicted = None;
        let mut decremented: Vec<(u8, u64)> = Vec::new();
        if self.map.len() >= self.capacity {
            let (victim, decrements) = self.evict();
            for d in decrements {
                match decremented.iter_mut().find(|(from, _)| *from == d) {
                    Some((_, count)) => *count += 1,
                    None => decremented.push((d, 1)),
                }
            }
            evicted = Some((victim, 0));
        }

        if self.ring.len() < self.capacity {
            self.ring.push(key.clone());
        } else {
            // Reuse the slot freed by the eviction (the hand points just
            // past it after `evict`).
            let slot = (self.hand + self.capacity - 1) % self.capacity;
            self.ring[slot] = key.clone();
        }

        self.map.insert(
            key.clone(),
            Entry {
                clock: AtomicU8::new(0),
                on_flash: AtomicBool::new(on_flash),
            },
        );
        AccessEvent {
            old_clock: None,
            new_clock: 0,
            evicted,
            decremented,
        }
    }

    /// Run the clock hand until a value-0 victim is found; returns the
    /// evicted key and the list of clock values that were decremented along
    /// the way.
    fn evict(&mut self) -> (Key, Vec<u8>) {
        let mut decrements = Vec::new();
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.ring.len();
            let candidate = self.ring[slot].clone();
            let entry = self
                .map
                .get_mut(&candidate)
                .expect("ring keys are always tracked");
            let clock = entry.clock.load(Ordering::Relaxed);
            if clock == 0 {
                self.map.remove(&candidate);
                return (candidate, decrements);
            }
            decrements.push(clock);
            entry.clock.store(clock - 1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_keys_start_cold_and_reaccess_heats_them() {
        let mut t = ClockTracker::new(10);
        let k = Key::from_id(1);
        let first = t.access(&k, false);
        assert_eq!(first.old_clock, None);
        assert_eq!(first.new_clock, 0);
        assert_eq!(t.clock_of(&k), Some(0));
        let second = t.access(&k, false);
        assert_eq!(second.old_clock, Some(0));
        assert_eq!(second.new_clock, MAX_CLOCK);
        assert_eq!(t.clock_of(&k), Some(MAX_CLOCK));
    }

    #[test]
    fn capacity_is_bounded_and_cold_keys_are_evicted_first() {
        let mut t = ClockTracker::new(4);
        // Two hot keys (accessed twice) and two cold keys.
        for id in 0..4u64 {
            t.access(&Key::from_id(id), false);
        }
        t.access(&Key::from_id(0), false);
        t.access(&Key::from_id(1), false);
        // Inserting a new key must evict one of the cold keys (2 or 3), not
        // a hot one.
        let event = t.access(&Key::from_id(100), false);
        let (victim, _) = event.evicted.expect("a key must be evicted");
        assert!(victim.id() == 2 || victim.id() == 3, "evicted {victim:?}");
        assert_eq!(t.len(), 4);
        assert!(t.clock_of(&Key::from_id(0)).is_some());
        assert!(t.clock_of(&Key::from_id(1)).is_some());
    }

    #[test]
    fn eviction_sweep_decrements_hot_keys() {
        let mut t = ClockTracker::new(2);
        t.access(&Key::from_id(1), false);
        t.access(&Key::from_id(1), false); // clock 3
        t.access(&Key::from_id(2), false);
        t.access(&Key::from_id(2), false); // clock 3

        // Now both are hot; inserting a third key forces the hand to sweep,
        // decrementing until one reaches zero.
        let event = t.access(&Key::from_id(3), false);
        assert!(event.evicted.is_some());
        assert!(!event.decremented.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn location_bits_and_flash_fraction() {
        let mut t = ClockTracker::new(10);
        t.access(&Key::from_id(1), true);
        t.access(&Key::from_id(2), false);
        t.access(&Key::from_id(3), true);
        assert_eq!(t.is_on_flash(&Key::from_id(1)), Some(true));
        assert_eq!(t.is_on_flash(&Key::from_id(2)), Some(false));
        assert!((t.flash_fraction() - 2.0 / 3.0).abs() < 1e-9);
        t.set_location(&Key::from_id(1), false);
        assert!((t.flash_fraction() - 1.0 / 3.0).abs() < 1e-9);
        t.set_location(&Key::from_id(99), true); // untracked: no effect
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn heavily_skewed_access_keeps_hot_set_resident() {
        let mut t = ClockTracker::new(50);
        // 10 hot keys accessed often interleaved with a long scan of cold keys.
        for round in 0..20u64 {
            for hot in 0..10u64 {
                t.access(&Key::from_id(hot), false);
            }
            for cold in 0..20u64 {
                t.access(&Key::from_id(1000 + round * 20 + cold), false);
            }
        }
        for hot in 0..10u64 {
            assert!(
                t.clock_of(&Key::from_id(hot)).is_some(),
                "hot key {hot} was evicted"
            );
        }
    }

    #[test]
    fn touch_reheats_tracked_keys_without_structural_changes() {
        let mut t = ClockTracker::new(4);
        let k = Key::from_id(1);
        t.access(&k, false); // clock 0, on NVM
        assert_eq!(t.touch(&k, true), Some(0));
        assert_eq!(t.clock_of(&k), Some(MAX_CLOCK));
        assert_eq!(t.is_on_flash(&k), Some(true));
        // A second touch sees the key already at MAX.
        assert_eq!(t.touch(&k, true), Some(MAX_CLOCK));
        // Untracked keys are not inserted by touch.
        assert_eq!(t.touch(&Key::from_id(99), false), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn racing_touches_observe_each_pre_max_value_exactly_once() {
        use std::sync::Arc;
        let mut t = ClockTracker::new(8);
        let k = Key::from_id(7);
        t.access(&k, false); // enters at clock 0
        let t = Arc::new(t);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            let k = k.clone();
            handles.push(std::thread::spawn(move || {
                let mut non_max_observed = 0u32;
                for _ in 0..1000 {
                    if t.touch(&k, false) != Some(MAX_CLOCK) {
                        non_max_observed += 1;
                    }
                }
                non_max_observed
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // The key started below MAX exactly once, so exactly one touch
        // across all threads saw a pre-MAX clock value.
        assert_eq!(total, 1);
        assert_eq!(t.clock_of(&k), Some(MAX_CLOCK));
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = ClockTracker::new(0);
    }
}
