//! Popularity tracking: the clock tracker and the mapper.
//!
//! PrismDB estimates object popularity with a multi-bit clock algorithm
//! (§4.3 of the paper): a capacity-bounded map from recently-accessed keys
//! to a 2-bit clock value plus a location bit. The *tracker* maintains that
//! map; the *mapper* maintains the distribution of clock values and turns a
//! configured *pinning threshold* (the fraction of tracked objects that
//! should stay on NVM) into per-object pin/demote decisions, sampling the
//! boundary clock class probabilistically when it straddles the threshold.
//!
//! # Example
//!
//! ```
//! use prism_tracker::{ClockTracker, Mapper, PinDecision};
//! use prism_types::Key;
//!
//! let mut tracker = ClockTracker::new(100);
//! let mapper = Mapper::new();
//! for id in 0..50u64 {
//!     let event = tracker.access(&Key::from_id(id), false);
//!     mapper.apply(&event);
//!     // A second access promotes the key to the maximum clock value.
//!     let event = tracker.access(&Key::from_id(id), false);
//!     mapper.apply(&event);
//! }
//! // With a 100% pinning threshold every tracked object may be pinned.
//! assert_eq!(mapper.pin_decision(Some(3), 1.0, tracker.len()), PinDecision::Pin);
//! // Untracked objects are always demoted.
//! assert_eq!(mapper.pin_decision(None, 0.5, tracker.len()), PinDecision::Demote);
//! ```

mod clock;
mod mapper;

pub use clock::{AccessEvent, ClockTracker, MAX_CLOCK};
pub use mapper::{Mapper, PinDecision};

#[cfg(test)]
mod proptests {
    use super::*;
    use prism_types::Key;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The tracker never exceeds its capacity and the mapper's histogram
        /// always sums to the tracker's population.
        #[test]
        fn capacity_and_histogram_invariants(
            capacity in 4usize..64,
            accesses in prop::collection::vec((0u64..200, prop::bool::ANY), 1..800)
        ) {
            let mut tracker = ClockTracker::new(capacity);
            let mapper = Mapper::new();
            for (id, on_flash) in accesses {
                let event = tracker.access(&Key::from_id(id), on_flash);
                mapper.apply(&event);
                prop_assert!(tracker.len() <= capacity);
                let total: u64 = mapper.histogram().iter().sum();
                prop_assert_eq!(total as usize, tracker.len());
            }
        }

        /// Interleaving lock-free touches (tracked keys) with structural
        /// accesses (untracked keys) keeps the histogram summing to the
        /// tracker population — the invariant the read path's atomic
        /// fast path relies on.
        #[test]
        fn touches_keep_histogram_consistent(
            capacity in 4usize..64,
            ops in prop::collection::vec((0u64..200, prop::bool::ANY), 1..800)
        ) {
            let mut tracker = ClockTracker::new(capacity);
            let mapper = Mapper::new();
            for (id, on_flash) in ops {
                let key = Key::from_id(id);
                match tracker.touch(&key, on_flash) {
                    Some(old) => mapper.promote_to_max(old),
                    None => mapper.apply(&tracker.access(&key, on_flash)),
                }
                prop_assert!(tracker.len() <= capacity);
                let total: u64 = mapper.histogram().iter().sum();
                prop_assert_eq!(total as usize, tracker.len());
            }
        }

        /// Pin decisions are monotone in the clock value: if a clock class is
        /// pinned, every hotter class is pinned too.
        #[test]
        fn pin_decisions_are_monotone(
            counts in prop::array::uniform4(0u64..1000),
            threshold in 0.0f64..1.0
        ) {
            let mapper = Mapper::new();
            mapper.set_histogram(counts);
            let tracked: u64 = counts.iter().sum();
            let mut seen_non_pin = false;
            for clock in (0..=MAX_CLOCK).rev() {
                let decision = mapper.pin_decision(Some(clock), threshold, tracked as usize);
                match decision {
                    PinDecision::Pin => {
                        prop_assert!(!seen_non_pin, "a hotter class was not pinned while a colder one was");
                    }
                    _ => seen_non_pin = true,
                }
            }
        }
    }
}
