//! The mapper: clock-value distribution and the pinning-threshold
//! algorithm.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::clock::{AccessEvent, MAX_CLOCK};

/// Placement decision for one object during compaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PinDecision {
    /// Keep the object on NVM.
    Pin,
    /// Keep the object on NVM with the given probability (the object's
    /// clock class straddles the pinning threshold, §4.3 of the paper).
    Sample(f64),
    /// Demote the object to flash.
    Demote,
}

impl PinDecision {
    /// Resolve the decision to a boolean using `draw`, a uniform random
    /// sample in `[0, 1)` supplied by the caller.
    pub fn should_pin(self, draw: f64) -> bool {
        match self {
            PinDecision::Pin => true,
            PinDecision::Demote => false,
            PinDecision::Sample(p) => draw < p,
        }
    }
}

/// Tracks the distribution of clock values over the tracked keys and
/// enforces the pinning threshold.
///
/// The mapper is deliberately tiny — four counters — matching the paper's
/// implementation as an array of four atomic integers. Since the lock-free
/// read path landed, the counters really are atomics: a hot read that
/// promotes a tracked key to [`MAX_CLOCK`] moves the key between clock
/// classes with two relaxed atomic ops ([`Mapper::promote_to_max`]) and no
/// lock, while structural tracker changes (inserts, evictions, hand
/// sweeps) keep flowing through [`Mapper::apply`] under the partition
/// write lock.
#[derive(Debug, Default)]
pub struct Mapper {
    counts: [AtomicU64; (MAX_CLOCK as usize) + 1],
}

impl Clone for Mapper {
    fn clone(&self) -> Self {
        let mapper = Mapper::new();
        mapper.set_histogram(self.histogram());
        mapper
    }
}

impl Mapper {
    /// A mapper with an empty histogram.
    pub fn new() -> Self {
        Mapper::default()
    }

    /// Apply the state changes of one tracker access.
    pub fn apply(&self, event: &AccessEvent) {
        if let Some(old) = event.old_clock {
            self.dec(old as usize, 1);
        }
        self.counts[event.new_clock as usize].fetch_add(1, Ordering::Relaxed);
        if let Some((_, clock)) = &event.evicted {
            self.dec(*clock as usize, 1);
        }
        for (from, count) in &event.decremented {
            let from = *from as usize;
            self.dec(from, *count);
            self.counts[from - 1].fetch_add(*count, Ordering::Relaxed);
        }
    }

    /// A tracked key at clock value `old` was promoted to [`MAX_CLOCK`] by
    /// a read-path touch. Lock-free: two relaxed atomic ops. A no-op when
    /// the key was already at the maximum (racing touches of the same key
    /// observe `old == MAX_CLOCK` for all but the first, because the
    /// tracker's clock swap serialises the transitions).
    pub fn promote_to_max(&self, old: u8) {
        if old == MAX_CLOCK {
            return;
        }
        self.dec(old as usize, 1);
        self.counts[MAX_CLOCK as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Saturating decrement of one clock class.
    fn dec(&self, idx: usize, by: u64) {
        let counter = &self.counts[idx];
        let mut current = counter.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(by);
            match counter.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// The raw clock-value histogram, index = clock value.
    pub fn histogram(&self) -> [u64; (MAX_CLOCK as usize) + 1] {
        let mut out = [0u64; (MAX_CLOCK as usize) + 1];
        for (slot, counter) in out.iter_mut().zip(self.counts.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        out
    }

    /// Overwrite the histogram (used by tests and by engines that rebuild
    /// the mapper after recovery).
    pub fn set_histogram(&self, counts: [u64; (MAX_CLOCK as usize) + 1]) {
        for (counter, value) in self.counts.iter().zip(counts.iter()) {
            counter.store(*value, Ordering::Relaxed);
        }
    }

    /// The histogram normalised to fractions of the tracked population
    /// (all zeros when nothing is tracked). Index = clock value.
    pub fn distribution(&self) -> [f64; (MAX_CLOCK as usize) + 1] {
        let counts = self.histogram();
        let total: u64 = counts.iter().sum();
        let mut dist = [0.0; (MAX_CLOCK as usize) + 1];
        if total == 0 {
            return dist;
        }
        for (i, &c) in counts.iter().enumerate() {
            dist[i] = c as f64 / total as f64;
        }
        dist
    }

    /// Decide whether an object with clock value `clock` (or `None` if the
    /// object is not tracked at all) should stay pinned on NVM.
    ///
    /// `pinning_threshold` is the fraction of *tracked* objects that should
    /// be retained on NVM; `tracked` is the tracker population used to turn
    /// the threshold into an object budget. The budget is filled from the
    /// hottest clock class downward; the class that straddles the budget is
    /// sampled with the residual probability (§4.3 of the paper).
    pub fn pin_decision(
        &self,
        clock: Option<u8>,
        pinning_threshold: f64,
        tracked: usize,
    ) -> PinDecision {
        let Some(clock) = clock else {
            return PinDecision::Demote;
        };
        let threshold = pinning_threshold.clamp(0.0, 1.0);
        if threshold <= 0.0 {
            return PinDecision::Demote;
        }
        let budget = threshold * tracked as f64;
        if budget <= 0.0 {
            return PinDecision::Demote;
        }
        // Count objects in classes strictly hotter than `clock`.
        let counts = self.histogram();
        let hotter: u64 = counts
            .iter()
            .enumerate()
            .filter(|(c, _)| *c > clock as usize)
            .map(|(_, &n)| n)
            .sum();
        let class = counts[clock as usize];
        let hotter = hotter as f64;
        let class = class as f64;
        if hotter + class <= budget {
            PinDecision::Pin
        } else if hotter >= budget {
            PinDecision::Demote
        } else {
            let p = (budget - hotter) / class.max(1.0);
            PinDecision::Sample(p.clamp(0.0, 1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockTracker;
    use prism_types::Key;

    #[test]
    fn histogram_tracks_accesses() {
        let mut tracker = ClockTracker::new(10);
        let mapper = Mapper::new();
        for id in 0..5u64 {
            mapper.apply(&tracker.access(&Key::from_id(id), false));
        }
        assert_eq!(mapper.histogram(), [5, 0, 0, 0]);
        for id in 0..2u64 {
            mapper.apply(&tracker.access(&Key::from_id(id), false));
        }
        assert_eq!(mapper.histogram(), [3, 0, 0, 2]);
        let dist = mapper.distribution();
        assert!((dist[0] - 0.6).abs() < 1e-9);
        assert!((dist[3] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn promote_to_max_moves_one_key_between_classes() {
        let mapper = Mapper::new();
        mapper.set_histogram([5, 2, 0, 1]);
        mapper.promote_to_max(0);
        assert_eq!(mapper.histogram(), [4, 2, 0, 2]);
        mapper.promote_to_max(1);
        assert_eq!(mapper.histogram(), [4, 1, 0, 3]);
        // A key already at MAX must not be double-counted (racing touches
        // of the same key observe old == MAX for all but the first).
        mapper.promote_to_max(MAX_CLOCK);
        assert_eq!(mapper.histogram(), [4, 1, 0, 3]);
    }

    #[test]
    fn concurrent_promotions_keep_the_population_exact() {
        use std::sync::Arc;
        let mapper = Arc::new(Mapper::new());
        mapper.set_histogram([4000, 0, 0, 0]);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mapper = Arc::clone(&mapper);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    mapper.promote_to_max(0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mapper.histogram(), [0, 0, 0, 4000]);
    }

    #[test]
    fn histogram_stays_consistent_under_eviction() {
        let mut tracker = ClockTracker::new(8);
        let mapper = Mapper::new();
        for id in 0..100u64 {
            mapper.apply(&tracker.access(&Key::from_id(id % 20), id % 3 == 0));
            let total: u64 = mapper.histogram().iter().sum();
            assert_eq!(total as usize, tracker.len());
        }
    }

    #[test]
    fn paper_example_ycsb_b_distribution() {
        // §4.3 example: 10% at clock 3, 10% at clock 2, 30% at clock 1,
        // 50% at clock 0, threshold 15%: clock 3 always pinned, clock 2
        // sampled at 0.5, clock 1/0 and untracked demoted.
        let mapper = Mapper::new();
        mapper.set_histogram([500, 300, 100, 100]);
        let tracked = 1000;
        assert_eq!(
            mapper.pin_decision(Some(3), 0.15, tracked),
            PinDecision::Pin
        );
        match mapper.pin_decision(Some(2), 0.15, tracked) {
            PinDecision::Sample(p) => assert!((p - 0.5).abs() < 1e-9, "p = {p}"),
            other => panic!("expected sampling, got {other:?}"),
        }
        assert_eq!(
            mapper.pin_decision(Some(1), 0.15, tracked),
            PinDecision::Demote
        );
        assert_eq!(
            mapper.pin_decision(Some(0), 0.15, tracked),
            PinDecision::Demote
        );
        assert_eq!(
            mapper.pin_decision(None, 0.15, tracked),
            PinDecision::Demote
        );
    }

    #[test]
    fn extreme_thresholds() {
        let mapper = Mapper::new();
        mapper.set_histogram([10, 10, 10, 10]);
        assert_eq!(mapper.pin_decision(Some(3), 0.0, 40), PinDecision::Demote);
        assert_eq!(mapper.pin_decision(Some(0), 1.0, 40), PinDecision::Pin);
        // Threshold above 1.0 is clamped.
        assert_eq!(mapper.pin_decision(Some(0), 3.0, 40), PinDecision::Pin);
        // Untracked objects are never pinned regardless of threshold.
        assert_eq!(mapper.pin_decision(None, 1.0, 40), PinDecision::Demote);
    }

    #[test]
    fn sample_decision_resolves_with_draw() {
        assert!(PinDecision::Pin.should_pin(0.99));
        assert!(!PinDecision::Demote.should_pin(0.0));
        assert!(PinDecision::Sample(0.5).should_pin(0.25));
        assert!(!PinDecision::Sample(0.5).should_pin(0.75));
    }

    #[test]
    fn empty_mapper_distribution_is_zero() {
        let mapper = Mapper::new();
        assert_eq!(mapper.distribution(), [0.0; 4]);
        assert_eq!(mapper.pin_decision(Some(3), 0.5, 0), PinDecision::Demote);
    }
}
