//! Deterministic, seedable storage fault injection.
//!
//! A [`FaultPlan`] decides, per storage operation, whether to inject a
//! fault and which kind: an I/O error surfaced to the caller, a bit flip
//! in the stored payload (to be caught later by a checksum), a torn
//! write (the tail of the payload never made it to media), or a latency
//! spike. Decisions are drawn from a counter-based splitmix64 stream
//! seeded at construction, so the same plan over the same operation
//! sequence injects the same faults — the property the fault
//! differential column depends on.
//!
//! The simulated [`Device`](crate::Device) holds no data, so the plan
//! splits responsibilities by layer:
//!
//! * **Device paths** apply latency-spike faults directly (they only
//!   affect the returned service time) and count them.
//! * **Data-owning layers** (the NVM slab store, the flash SST builder,
//!   the commit log) call [`FaultPlan::roll`] with tier/partition/op
//!   context and apply the returned [`InjectedFault`]: flip the chosen
//!   bit in the bytes they are about to store, drop the tail of a torn
//!   write, or return `PrismError::Io`.
//!
//! Injection counters live on the plan; detection is credited back via
//! [`FaultPlan::note_detected`] when a checksum catches a corrupted
//! payload, which lets the chaos harness assert a 100% detection rate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use prism_types::Nanos;

/// Storage tier a fault decision applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTier {
    /// The NVM slab tier (slab slots and the commit log ride on NVM).
    Nvm,
    /// The flash SST tier.
    Flash,
}

/// Kind of storage operation being rolled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A read of persisted state.
    Read,
    /// A write of new state.
    Write,
}

/// The fault modes a plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail the operation with `PrismError::Io`.
    IoError,
    /// Flip one bit of the stored payload (write paths only; detected
    /// later by a checksum).
    BitFlip,
    /// Persist only a prefix of the payload (write paths only).
    TornWrite,
    /// Add extra service latency but complete successfully.
    LatencySpike,
}

/// A fault decision returned by [`FaultPlan::roll`], carrying the
/// details the injecting layer needs to apply it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Return `PrismError::Io` without touching state.
    IoError,
    /// Flip bit `bit` of byte `byte` in the payload about to be stored.
    BitFlip {
        /// Byte offset into the payload (already reduced mod its length).
        byte: usize,
        /// Bit index 0..8 within that byte.
        bit: u8,
    },
    /// Store only the first `keep` bytes of the payload.
    TornWrite {
        /// Payload prefix length that survives.
        keep: usize,
    },
    /// Complete the operation but add `extra` to its service time.
    LatencySpike(Nanos),
}

/// Per-tier fault probabilities (each in `[0, 1]`, rolled per op).
///
/// Bit-flip and torn-write rates only apply to write ops; I/O-error and
/// latency-spike rates apply to reads and writes alike.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierFaultRates {
    /// Probability an op fails with an injected I/O error.
    pub io_error: f64,
    /// Probability a write's stored payload gets one bit flipped.
    pub bit_flip: f64,
    /// Probability a write persists only a prefix of its payload.
    pub torn_write: f64,
    /// Probability an op is slowed by `spike` extra latency.
    pub latency_spike: f64,
    /// Extra latency added when a spike fires.
    pub spike: Nanos,
}

/// A targeted one-shot fault armed by a test: fires on the next matching
/// operation, then disarms.
#[derive(Debug, Clone, Copy)]
pub struct TargetedFault {
    /// Tier the fault waits for.
    pub tier: FaultTier,
    /// Partition the fault waits for (`None` matches any).
    pub partition: Option<usize>,
    /// Operation kind the fault waits for.
    pub op: FaultOp,
    /// What to inject when it fires.
    pub mode: FaultMode,
}

/// Cumulative injection/detection counters of a [`FaultPlan`].
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// I/O errors injected.
    pub io_errors: AtomicU64,
    /// Bit flips injected into stored payloads.
    pub bit_flips: AtomicU64,
    /// Torn writes injected.
    pub torn_writes: AtomicU64,
    /// Latency spikes injected.
    pub latency_spikes: AtomicU64,
    /// Corrupted payloads caught by a checksum (credited by the
    /// detecting layer via [`FaultPlan::note_detected`]).
    pub detected: AtomicU64,
}

/// A snapshot of [`FaultCounters`] as plain integers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCountersSnapshot {
    /// I/O errors injected.
    pub io_errors: u64,
    /// Bit flips injected.
    pub bit_flips: u64,
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
    /// Corruptions caught by a checksum.
    pub detected: u64,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic, seedable fault-injection plan shared by every layer of
/// one engine (see the module docs for the division of labour).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    counter: AtomicU64,
    nvm: TierFaultRates,
    flash: TierFaultRates,
    targeted: Mutex<Vec<TargetedFault>>,
    counters: FaultCounters,
}

impl FaultPlan {
    /// A plan that injects nothing until rates are set or a targeted
    /// fault is armed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            counter: AtomicU64::new(0),
            nvm: TierFaultRates::default(),
            flash: TierFaultRates::default(),
            targeted: Mutex::new(Vec::new()),
            counters: FaultCounters::default(),
        }
    }

    /// Set the probabilistic rates for one tier (builder-style).
    pub fn with_tier_rates(mut self, tier: FaultTier, rates: TierFaultRates) -> FaultPlan {
        match tier {
            FaultTier::Nvm => self.nvm = rates,
            FaultTier::Flash => self.flash = rates,
        }
        self
    }

    /// Set the same probabilistic rates for both tiers (builder-style).
    pub fn with_rates(self, rates: TierFaultRates) -> FaultPlan {
        self.with_tier_rates(FaultTier::Nvm, rates)
            .with_tier_rates(FaultTier::Flash, rates)
    }

    /// Arm a targeted one-shot fault: it fires on the next operation
    /// matching its tier/partition/op, then disarms.
    pub fn arm(&self, fault: TargetedFault) {
        self.targeted
            .lock()
            .expect("fault plan mutex poisoned")
            .push(fault);
    }

    /// Injection/detection counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Plain-integer snapshot of the counters.
    pub fn snapshot(&self) -> FaultCountersSnapshot {
        FaultCountersSnapshot {
            io_errors: self.counters.io_errors.load(Ordering::Relaxed),
            bit_flips: self.counters.bit_flips.load(Ordering::Relaxed),
            torn_writes: self.counters.torn_writes.load(Ordering::Relaxed),
            latency_spikes: self.counters.latency_spikes.load(Ordering::Relaxed),
            detected: self.counters.detected.load(Ordering::Relaxed),
        }
    }

    /// Credit a checksum layer with catching an injected corruption.
    pub fn note_detected(&self) {
        self.counters.detected.fetch_add(1, Ordering::Relaxed);
    }

    /// Total payload corruptions injected (bit flips + torn writes) —
    /// the denominator of the detection-rate assertion.
    pub fn injected_corruptions(&self) -> u64 {
        self.counters.bit_flips.load(Ordering::Relaxed)
            + self.counters.torn_writes.load(Ordering::Relaxed)
    }

    fn draw(&self) -> u64 {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed.wrapping_add(n.wrapping_mul(GOLDEN)))
    }

    /// A uniform float in `[0, 1)` from the deterministic stream.
    fn draw_unit(&self) -> f64 {
        (self.draw() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn rates(&self, tier: FaultTier) -> TierFaultRates {
        match tier {
            FaultTier::Nvm => self.nvm,
            FaultTier::Flash => self.flash,
        }
    }

    fn materialize(&self, mode: FaultMode, tier: FaultTier, payload_len: usize) -> InjectedFault {
        match mode {
            FaultMode::IoError => {
                self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                InjectedFault::IoError
            }
            FaultMode::BitFlip => {
                self.counters.bit_flips.fetch_add(1, Ordering::Relaxed);
                let r = self.draw();
                let byte = if payload_len == 0 {
                    0
                } else {
                    (r as usize) % payload_len
                };
                InjectedFault::BitFlip {
                    byte,
                    bit: ((r >> 32) % 8) as u8,
                }
            }
            FaultMode::TornWrite => {
                self.counters.torn_writes.fetch_add(1, Ordering::Relaxed);
                let keep = if payload_len == 0 {
                    0
                } else {
                    (self.draw() as usize) % payload_len
                };
                InjectedFault::TornWrite { keep }
            }
            FaultMode::LatencySpike => {
                self.counters.latency_spikes.fetch_add(1, Ordering::Relaxed);
                InjectedFault::LatencySpike(self.rates(tier).spike)
            }
        }
    }

    /// Roll the plan for one operation. Returns at most one fault;
    /// `payload_len` is the length of the bytes about to be stored (0
    /// for reads) and bounds bit-flip/torn-write positions.
    ///
    /// Targeted one-shot faults fire first; otherwise one uniform draw
    /// is compared against the tier's cumulative rates, so at most one
    /// probabilistic mode fires per op.
    pub fn roll(
        &self,
        tier: FaultTier,
        partition: usize,
        op: FaultOp,
        payload_len: usize,
    ) -> Option<InjectedFault> {
        self.roll_filtered(tier, partition, op, payload_len, |_| true)
    }

    /// Roll only the payload-corruption modes (bit flip, torn write) —
    /// the roll data-owning write paths without a `Result` return (the
    /// SST builder) use; I/O errors for those paths are rolled where an
    /// error can be surfaced.
    pub fn roll_corruption(
        &self,
        tier: FaultTier,
        partition: usize,
        payload_len: usize,
    ) -> Option<InjectedFault> {
        self.roll_filtered(tier, partition, FaultOp::Write, payload_len, |m| {
            matches!(m, FaultMode::BitFlip | FaultMode::TornWrite)
        })
    }

    /// Roll only for an injected I/O error on this op. Returns true when
    /// the caller must fail with `PrismError::Io`.
    pub fn roll_io_error(&self, tier: FaultTier, partition: usize, op: FaultOp) -> bool {
        matches!(
            self.roll_filtered(tier, partition, op, 0, |m| m == FaultMode::IoError),
            Some(InjectedFault::IoError)
        )
    }

    fn roll_filtered(
        &self,
        tier: FaultTier,
        partition: usize,
        op: FaultOp,
        payload_len: usize,
        allow: impl Fn(FaultMode) -> bool,
    ) -> Option<InjectedFault> {
        {
            let mut targeted = self.targeted.lock().expect("fault plan mutex poisoned");
            if let Some(pos) = targeted.iter().position(|t| {
                t.tier == tier
                    && t.op == op
                    && t.partition.map(|p| p == partition).unwrap_or(true)
                    && allow(t.mode)
                    && (op == FaultOp::Write
                        || !matches!(t.mode, FaultMode::BitFlip | FaultMode::TornWrite))
            }) {
                let fault = targeted.swap_remove(pos);
                return Some(self.materialize(fault.mode, tier, payload_len));
            }
        }

        let rates = self.rates(tier);
        let write = op == FaultOp::Write;
        let gate = |mode: FaultMode, rate: f64| if allow(mode) { rate } else { 0.0 };
        let io_error = gate(FaultMode::IoError, rates.io_error);
        let bit_flip = gate(FaultMode::BitFlip, if write { rates.bit_flip } else { 0.0 });
        let torn = gate(
            FaultMode::TornWrite,
            if write { rates.torn_write } else { 0.0 },
        );
        let spike = gate(FaultMode::LatencySpike, rates.latency_spike);
        if io_error + bit_flip + torn + spike <= 0.0 {
            return None;
        }
        let p = self.draw_unit();
        let mut edge = io_error;
        if p < edge {
            return Some(self.materialize(FaultMode::IoError, tier, payload_len));
        }
        edge += bit_flip;
        if p < edge {
            return Some(self.materialize(FaultMode::BitFlip, tier, payload_len));
        }
        edge += torn;
        if p < edge {
            return Some(self.materialize(FaultMode::TornWrite, tier, payload_len));
        }
        edge += spike;
        if p < edge {
            return Some(self.materialize(FaultMode::LatencySpike, tier, payload_len));
        }
        None
    }

    /// Device-path helper: roll for a latency spike only (devices hold
    /// no data, so error/corruption faults are rolled by the data-owning
    /// layers instead). Returns the extra latency to add, if any.
    pub fn roll_latency(&self, tier: FaultTier) -> Option<Nanos> {
        let rates = self.rates(tier);
        if rates.latency_spike <= 0.0 {
            return None;
        }
        if self.draw_unit() < rates.latency_spike {
            self.counters.latency_spikes.fetch_add(1, Ordering::Relaxed);
            Some(rates.spike)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_with(rates: TierFaultRates) -> FaultPlan {
        FaultPlan::new(0xFA01).with_rates(rates)
    }

    #[test]
    fn zero_rate_plan_injects_nothing() {
        let plan = FaultPlan::new(7);
        for i in 0..10_000 {
            assert_eq!(plan.roll(FaultTier::Nvm, i % 4, FaultOp::Write, 128), None);
        }
        assert_eq!(plan.snapshot(), FaultCountersSnapshot::default());
    }

    #[test]
    fn same_seed_same_faults() {
        let make = || {
            plan_with(TierFaultRates {
                io_error: 0.01,
                bit_flip: 0.01,
                torn_write: 0.01,
                latency_spike: 0.01,
                spike: Nanos::from_micros(50),
            })
        };
        let a = make();
        let b = make();
        for i in 0..5_000 {
            let op = if i % 3 == 0 {
                FaultOp::Read
            } else {
                FaultOp::Write
            };
            assert_eq!(
                a.roll(FaultTier::Flash, i % 8, op, 256),
                b.roll(FaultTier::Flash, i % 8, op, 256)
            );
        }
        assert_ne!(a.snapshot(), FaultCountersSnapshot::default());
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = plan_with(TierFaultRates {
            io_error: 0.05,
            ..TierFaultRates::default()
        });
        let mut hits = 0u64;
        for _ in 0..20_000 {
            if plan.roll(FaultTier::Nvm, 0, FaultOp::Read, 0).is_some() {
                hits += 1;
            }
        }
        // 5% of 20k = 1000 expected; accept a generous band.
        assert!((600..1400).contains(&hits), "hits={hits}");
        assert_eq!(plan.snapshot().io_errors, hits);
    }

    #[test]
    fn reads_never_get_payload_corruption() {
        let plan = plan_with(TierFaultRates {
            bit_flip: 1.0,
            torn_write: 1.0,
            ..TierFaultRates::default()
        });
        for _ in 0..1_000 {
            assert_eq!(plan.roll(FaultTier::Nvm, 0, FaultOp::Read, 0), None);
        }
        let forced = plan.roll(FaultTier::Nvm, 0, FaultOp::Write, 64);
        assert!(matches!(
            forced,
            Some(InjectedFault::BitFlip { .. }) | Some(InjectedFault::TornWrite { .. })
        ));
    }

    #[test]
    fn targeted_fault_fires_once_on_match() {
        let plan = FaultPlan::new(11);
        plan.arm(TargetedFault {
            tier: FaultTier::Flash,
            partition: Some(3),
            op: FaultOp::Write,
            mode: FaultMode::BitFlip,
        });
        // Wrong tier, wrong partition, wrong op: nothing fires.
        assert_eq!(plan.roll(FaultTier::Nvm, 3, FaultOp::Write, 64), None);
        assert_eq!(plan.roll(FaultTier::Flash, 2, FaultOp::Write, 64), None);
        assert_eq!(plan.roll(FaultTier::Flash, 3, FaultOp::Read, 0), None);
        // Match fires exactly once.
        let fault = plan.roll(FaultTier::Flash, 3, FaultOp::Write, 64);
        assert!(matches!(fault, Some(InjectedFault::BitFlip { byte, .. }) if byte < 64));
        assert_eq!(plan.roll(FaultTier::Flash, 3, FaultOp::Write, 64), None);
        assert_eq!(plan.snapshot().bit_flips, 1);
    }

    #[test]
    fn bit_flip_positions_stay_in_bounds() {
        let plan = plan_with(TierFaultRates {
            bit_flip: 1.0,
            ..TierFaultRates::default()
        });
        for len in [1usize, 2, 7, 64, 4096] {
            for _ in 0..50 {
                match plan.roll(FaultTier::Nvm, 0, FaultOp::Write, len) {
                    Some(InjectedFault::BitFlip { byte, bit }) => {
                        assert!(byte < len);
                        assert!(bit < 8);
                    }
                    other => panic!("expected bit flip, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn detection_counter_tracks_notes() {
        let plan = FaultPlan::new(1);
        plan.note_detected();
        plan.note_detected();
        assert_eq!(plan.snapshot().detected, 2);
        assert_eq!(plan.injected_corruptions(), 0);
    }

    #[test]
    fn filtered_rolls_only_fire_their_modes() {
        let plan = plan_with(TierFaultRates {
            io_error: 1.0,
            ..TierFaultRates::default()
        });
        // Corruption-only roll never fires on a pure-io-error plan.
        assert_eq!(plan.roll_corruption(FaultTier::Flash, 0, 128), None);
        assert!(plan.roll_io_error(FaultTier::Flash, 0, FaultOp::Read));

        let flips = plan_with(TierFaultRates {
            bit_flip: 1.0,
            ..TierFaultRates::default()
        });
        assert!(!flips.roll_io_error(FaultTier::Nvm, 0, FaultOp::Write));
        assert!(matches!(
            flips.roll_corruption(FaultTier::Nvm, 0, 128),
            Some(InjectedFault::BitFlip { .. })
        ));
        // Targeted faults respect the filter too.
        let quiet = FaultPlan::new(99);
        quiet.arm(TargetedFault {
            tier: FaultTier::Flash,
            partition: None,
            op: FaultOp::Write,
            mode: FaultMode::IoError,
        });
        assert_eq!(quiet.roll_corruption(FaultTier::Flash, 0, 64), None);
        assert!(quiet.roll_io_error(FaultTier::Flash, 0, FaultOp::Write));
    }

    #[test]
    fn latency_roll_only_spikes() {
        let plan = plan_with(TierFaultRates {
            latency_spike: 1.0,
            spike: Nanos::from_micros(500),
            ..TierFaultRates::default()
        });
        assert_eq!(
            plan.roll_latency(FaultTier::Flash),
            Some(Nanos::from_micros(500))
        );
        let quiet = FaultPlan::new(2);
        assert_eq!(quiet.roll_latency(FaultTier::Nvm), None);
    }
}
