//! The simulated block device.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use prism_types::{Nanos, TierIo};

use crate::fault::{FaultPlan, FaultTier};
use crate::profile::DeviceProfile;

/// The standard page size used for random-access charging.
pub const PAGE_SIZE: u64 = 4096;

/// Cumulative I/O counters of a [`Device`].
#[derive(Debug, Default)]
pub struct DeviceCounters {
    /// Bytes read (random + sequential).
    pub bytes_read: AtomicU64,
    /// Bytes written (random + sequential).
    pub bytes_written: AtomicU64,
    /// Read operations issued.
    pub reads: AtomicU64,
    /// Write operations issued.
    pub writes: AtomicU64,
    /// Random 4 KB pages read (subset of `reads`).
    pub random_pages_read: AtomicU64,
    /// Random 4 KB pages written (subset of `writes`).
    pub random_pages_written: AtomicU64,
    /// Latency-spike faults injected into this device's accesses by an
    /// attached [`FaultPlan`].
    pub latency_spikes_injected: AtomicU64,
    /// Extra simulated nanoseconds those spikes added.
    pub spike_nanos_injected: AtomicU64,
}

impl DeviceCounters {
    /// Snapshot the counters into the plain [`TierIo`] struct used in
    /// engine statistics.
    pub fn as_tier_io(&self) -> TierIo {
        TierIo {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }
}

/// A simulated storage device.
///
/// The device charges simulated time for each access based on its
/// [`DeviceProfile`] and counts I/O. It holds no data: callers own their
/// contents and use the device purely for timing and accounting, which keeps
/// experiments fast while preserving the performance model.
///
/// All counter updates use relaxed atomics so a device can be shared across
/// engine partitions with `Arc<Device>`.
///
/// # Example
///
/// ```
/// use prism_storage::{Device, DeviceProfile};
///
/// let flash = Device::new(DeviceProfile::qlc_flash(1 << 30));
/// let latency = flash.read_random(4096);
/// assert_eq!(latency, flash.profile().read_latency_4k);
/// assert_eq!(flash.counters().as_tier_io().reads, 1);
/// ```
#[derive(Debug)]
pub struct Device {
    profile: DeviceProfile,
    counters: DeviceCounters,
    used_bytes: AtomicU64,
    fault: Option<(Arc<FaultPlan>, FaultTier)>,
}

impl Device {
    /// Create a device with the given profile.
    pub fn new(profile: DeviceProfile) -> Self {
        Device {
            profile,
            counters: DeviceCounters::default(),
            used_bytes: AtomicU64::new(0),
            fault: None,
        }
    }

    /// Create a device whose accesses roll `plan` for latency-spike
    /// faults (error and corruption faults are rolled by the data-owning
    /// layers — the device holds no data; see the `fault` module docs).
    pub fn with_faults(profile: DeviceProfile, plan: Arc<FaultPlan>, tier: FaultTier) -> Self {
        Device {
            fault: Some((plan, tier)),
            ..Device::new(profile)
        }
    }

    /// The device's performance/cost profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Cumulative I/O counters.
    pub fn counters(&self) -> &DeviceCounters {
        &self.counters
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref().map(|(plan, _)| plan)
    }

    /// Roll the attached fault plan for a latency spike and account for
    /// it; returns the extra latency to add to one access (zero without
    /// a plan or when the roll comes up clean).
    fn spike(&self) -> Nanos {
        let Some((plan, tier)) = &self.fault else {
            return Nanos::ZERO;
        };
        match plan.roll_latency(*tier) {
            Some(extra) => {
                self.counters
                    .latency_spikes_injected
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .spike_nanos_injected
                    .fetch_add(extra.as_nanos(), Ordering::Relaxed);
                extra
            }
            None => Nanos::ZERO,
        }
    }

    fn pages(bytes: u64) -> u64 {
        bytes.div_ceil(PAGE_SIZE).max(1)
    }

    fn seq_transfer_time(bytes: u64, mbps: u64) -> Nanos {
        // bytes / (MB/s) expressed in nanoseconds: bytes * 1000 / mbps gives ns
        // because 1 MB/s == 1 byte/µs.
        Nanos::from_nanos((bytes.max(1)) * 1_000 / mbps.max(1))
    }

    /// Random read of `bytes` bytes. Charged per 4 KB page.
    pub fn read_random(&self, bytes: u64) -> Nanos {
        let pages = Self::pages(bytes);
        self.counters.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        self.counters
            .random_pages_read
            .fetch_add(pages, Ordering::Relaxed);
        self.profile.read_latency_4k * pages + self.spike()
    }

    /// Random write of `bytes` bytes. Charged per 4 KB page.
    pub fn write_random(&self, bytes: u64) -> Nanos {
        let pages = Self::pages(bytes);
        self.counters
            .bytes_written
            .fetch_add(bytes, Ordering::Relaxed);
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        self.counters
            .random_pages_written
            .fetch_add(pages, Ordering::Relaxed);
        self.profile.write_latency_4k * pages + self.spike()
    }

    /// Sequential read of `bytes` bytes: one access latency plus a
    /// bandwidth-limited transfer.
    pub fn read_sequential(&self, bytes: u64) -> Nanos {
        self.counters.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        self.profile.read_latency_4k
            + Self::seq_transfer_time(bytes, self.profile.seq_read_mbps)
            + self.spike()
    }

    /// Sequential write of `bytes` bytes: one access latency plus a
    /// bandwidth-limited transfer.
    pub fn write_sequential(&self, bytes: u64) -> Nanos {
        self.counters
            .bytes_written
            .fetch_add(bytes, Ordering::Relaxed);
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        self.write_sequential_cost(bytes) + self.spike()
    }

    /// The simulated latency of writing `bytes` as one sequential
    /// submission, *without* recording any I/O against the device
    /// counters. Group-commit paths use this to re-price a set of slot
    /// writes that were already counted individually: the batch pays one
    /// access latency plus a bandwidth-limited transfer instead of one
    /// random-write latency per slot.
    pub fn write_sequential_cost(&self, bytes: u64) -> Nanos {
        self.profile.write_latency_4k + Self::seq_transfer_time(bytes, self.profile.seq_write_mbps)
    }

    /// A synchronous flush / FUA write barrier (used by fsync-enabled WAL
    /// writes). Modelled as one random 4 KB write's worth of latency.
    pub fn sync(&self) -> Nanos {
        self.profile.write_latency_4k
    }

    /// Record that `bytes` of capacity are now in use.
    pub fn allocate(&self, bytes: u64) {
        self.used_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record that `bytes` of capacity have been released.
    pub fn release(&self, bytes: u64) {
        let mut current = self.used_bytes.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.used_bytes.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Bytes currently accounted as in use.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Fraction of the device capacity currently in use.
    pub fn utilization(&self) -> f64 {
        self.used_bytes() as f64 / self.profile.capacity_bytes.max(1) as f64
    }

    /// Bytes of free capacity remaining.
    pub fn free_bytes(&self) -> u64 {
        self.profile
            .capacity_bytes
            .saturating_sub(self.used_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    #[test]
    fn random_reads_charge_per_page() {
        let dev = Device::new(DeviceProfile::optane_nvm(1 << 30));
        let one_page = dev.read_random(100);
        let three_pages = dev.read_random(3 * 4096);
        assert_eq!(one_page, dev.profile().read_latency_4k);
        assert_eq!(three_pages, dev.profile().read_latency_4k * 3);
        assert_eq!(dev.counters().random_pages_read.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn sequential_io_is_bandwidth_limited() {
        let dev = Device::new(DeviceProfile::qlc_flash(1 << 30));
        let small = dev.write_sequential(4096);
        let large = dev.write_sequential(64 << 20);
        assert!(large > small * 100);
        // Sequential writes of large files are much cheaper per byte than
        // random page writes.
        let per_byte_seq = large.as_nanos() as f64 / (64u64 << 20) as f64;
        let per_byte_rand = dev.write_random(4096).as_nanos() as f64 / 4096.0;
        assert!(per_byte_rand > 5.0 * per_byte_seq);
    }

    #[test]
    fn counters_accumulate() {
        let dev = Device::new(DeviceProfile::tlc_flash(1 << 30));
        dev.read_random(4096);
        dev.write_random(4096);
        dev.read_sequential(8192);
        dev.write_sequential(8192);
        let io = dev.counters().as_tier_io();
        assert_eq!(io.reads, 2);
        assert_eq!(io.writes, 2);
        assert_eq!(io.bytes_read, 4096 + 8192);
        assert_eq!(io.bytes_written, 4096 + 8192);
    }

    #[test]
    fn capacity_accounting() {
        let dev = Device::new(DeviceProfile::optane_nvm(10_000));
        dev.allocate(6_000);
        assert_eq!(dev.used_bytes(), 6_000);
        assert_eq!(dev.free_bytes(), 4_000);
        assert!((dev.utilization() - 0.6).abs() < 1e-9);
        dev.release(8_000);
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn sync_costs_a_write() {
        let dev = Device::new(DeviceProfile::optane_nvm(1 << 30));
        assert_eq!(dev.sync(), dev.profile().write_latency_4k);
    }

    #[test]
    fn latency_spikes_slow_accesses_and_are_counted() {
        use crate::fault::{FaultPlan, FaultTier, TierFaultRates};

        let spike = Nanos::from_micros(750);
        let plan = Arc::new(FaultPlan::new(42).with_rates(TierFaultRates {
            latency_spike: 1.0,
            spike,
            ..TierFaultRates::default()
        }));
        let profile = DeviceProfile::qlc_flash(1 << 30);
        let faulty = Device::with_faults(profile, plan.clone(), FaultTier::Flash);
        let clean = Device::new(profile);
        assert_eq!(faulty.read_random(4096), clean.read_random(4096) + spike);
        assert_eq!(faulty.write_random(4096), clean.write_random(4096) + spike);
        assert_eq!(
            faulty
                .counters()
                .latency_spikes_injected
                .load(Ordering::Relaxed),
            2
        );
        assert_eq!(
            faulty
                .counters()
                .spike_nanos_injected
                .load(Ordering::Relaxed),
            2 * spike.as_nanos()
        );
        assert_eq!(plan.snapshot().latency_spikes, 2);
    }
}
