//! Tiered storage device simulator.
//!
//! The paper evaluates PrismDB on real NVMe devices: an Intel Optane P5800X
//! (3D XPoint "NVM"), an Intel 760p (TLC NAND) and an Intel 660p (QLC NAND).
//! This crate replaces those devices with a deterministic simulator that
//! reproduces the properties the paper's results depend on:
//!
//! * the ~65× random-read latency gap between NVM and QLC (Table 1),
//! * the ~25× cost-per-GB gap and blended multi-tier cost (Table 2, Fig. 9),
//! * the ~2000× endurance (DWPD) gap that drives the lifetime analysis
//!   (Fig. 12), and
//! * sequential-vs-random access asymmetry on flash.
//!
//! Devices do **not** hold data — the NVM slab store and flash SST layer own
//! their contents in memory. A [`Device`] is an accounting object: every
//! access charges simulated time and increments I/O counters, which is all
//! the evaluation needs.
//!
//! # Example
//!
//! ```
//! use prism_storage::{Device, DeviceProfile};
//!
//! let nvm = Device::new(DeviceProfile::optane_nvm(16 << 30));
//! let qlc = Device::new(DeviceProfile::qlc_flash(128 << 30));
//! let fast = nvm.read_random(4096);
//! let slow = qlc.read_random(4096);
//! assert!(slow.as_nanos() > 50 * fast.as_nanos());
//! ```

mod commitlog;
mod cost;
mod device;
mod endurance;
mod fault;
mod profile;

pub use commitlog::{group_digest, CommitLog, CommitLogCounters, CommitPart, CommitRecord};
pub use cost::{blended_cost_per_gb, CostBreakdown};
pub use device::{Device, DeviceCounters};
pub use endurance::{lifetime_years, EnduranceModel, WARRANTY_YEARS};
pub use fault::{
    FaultCounters, FaultCountersSnapshot, FaultMode, FaultOp, FaultPlan, FaultTier, InjectedFault,
    TargetedFault, TierFaultRates,
};
pub use profile::{CpuCosts, DeviceKind, DeviceProfile};

use std::sync::Arc;

use prism_types::TierIo;

/// The pair of storage devices backing a two-tier deployment, plus the CPU
/// cost model shared by all engines.
///
/// Engines hold `Arc<Device>` handles so all partitions of one engine share
/// the same physical device counters, exactly like partitions sharing one
/// drive in the real system.
#[derive(Debug, Clone)]
pub struct TieredStorage {
    /// The fast tier (NVM).
    pub nvm: Arc<Device>,
    /// The slow tier (flash: TLC or QLC).
    pub flash: Arc<Device>,
    /// CPU cost constants used when charging for index lookups, merges, etc.
    pub cpu: CpuCosts,
    /// The fault-injection plan shared by both devices and the data
    /// layers above them (`None` for a fault-free deployment).
    pub fault: Option<Arc<FaultPlan>>,
}

impl TieredStorage {
    /// Build a tiered setup from two device profiles.
    pub fn new(nvm_profile: DeviceProfile, flash_profile: DeviceProfile) -> Self {
        TieredStorage {
            nvm: Arc::new(Device::new(nvm_profile)),
            flash: Arc::new(Device::new(flash_profile)),
            cpu: CpuCosts::default(),
            fault: None,
        }
    }

    /// Build a tiered setup whose devices and data layers share a
    /// fault-injection plan.
    pub fn with_fault_plan(
        nvm_profile: DeviceProfile,
        flash_profile: DeviceProfile,
        plan: Arc<FaultPlan>,
    ) -> Self {
        TieredStorage {
            nvm: Arc::new(Device::with_faults(
                nvm_profile,
                plan.clone(),
                FaultTier::Nvm,
            )),
            flash: Arc::new(Device::with_faults(
                flash_profile,
                plan.clone(),
                FaultTier::Flash,
            )),
            cpu: CpuCosts::default(),
            fault: Some(plan),
        }
    }

    /// The paper's default heterogeneous configuration: a small Optane NVM
    /// device holding `nvm_fraction` of the total capacity and QLC flash
    /// holding the rest.
    pub fn heterogeneous(total_capacity: u64, nvm_fraction: f64) -> Self {
        let nvm_capacity = (total_capacity as f64 * nvm_fraction) as u64;
        let flash_capacity = total_capacity - nvm_capacity;
        TieredStorage::new(
            DeviceProfile::optane_nvm(nvm_capacity.max(1)),
            DeviceProfile::qlc_flash(flash_capacity.max(1)),
        )
    }

    /// Blended dollar cost per gigabyte across the two tiers, weighted by
    /// capacity, as reported in Table 2 and Figure 9 of the paper.
    pub fn cost_per_gb(&self) -> f64 {
        blended_cost_per_gb(&[
            (self.nvm.profile(), self.nvm.profile().capacity_bytes),
            (self.flash.profile(), self.flash.profile().capacity_bytes),
        ])
    }

    /// Combined I/O counters of the NVM device as a [`TierIo`] snapshot.
    pub fn nvm_io(&self) -> TierIo {
        self.nvm.counters().as_tier_io()
    }

    /// Combined I/O counters of the flash device as a [`TierIo`] snapshot.
    pub fn flash_io(&self) -> TierIo {
        self.flash.counters().as_tier_io()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_splits_capacity() {
        let storage = TieredStorage::heterogeneous(100 << 30, 0.2);
        assert_eq!(storage.nvm.profile().capacity_bytes, 20 << 30);
        assert_eq!(storage.flash.profile().capacity_bytes, 80 << 30);
    }

    #[test]
    fn het_cost_sits_between_tiers() {
        let storage = TieredStorage::heterogeneous(100 << 30, 0.11);
        let cost = storage.cost_per_gb();
        let nvm_cost = storage.nvm.profile().cost_per_gb;
        let qlc_cost = storage.flash.profile().cost_per_gb;
        assert!(cost > qlc_cost && cost < nvm_cost);
        // Paper: ~11% NVM lands near $0.34/GB.
        assert!(cost > 0.25 && cost < 0.45, "cost was {cost}");
    }

    #[test]
    fn fault_plan_is_shared_by_both_devices() {
        let plan = Arc::new(FaultPlan::new(9).with_rates(TierFaultRates {
            latency_spike: 1.0,
            spike: prism_types::Nanos::from_micros(100),
            ..TierFaultRates::default()
        }));
        let storage = TieredStorage::with_fault_plan(
            DeviceProfile::optane_nvm(1 << 30),
            DeviceProfile::qlc_flash(1 << 30),
            plan.clone(),
        );
        storage.nvm.read_random(4096);
        storage.flash.write_random(4096);
        assert_eq!(plan.snapshot().latency_spikes, 2);
        assert!(storage.fault.is_some());
    }

    #[test]
    fn io_counters_visible_through_tiered_view() {
        let storage = TieredStorage::heterogeneous(1 << 30, 0.5);
        storage.nvm.write_random(4096);
        storage.flash.read_sequential(1 << 20);
        assert_eq!(storage.nvm_io().bytes_written, 4096);
        assert_eq!(storage.flash_io().bytes_read, 1 << 20);
    }
}
