//! Commit log for cross-partition atomic batches.
//!
//! A `WriteBatch` that spans partitions is installed in several
//! per-partition steps; a crash between steps would expose half a batch.
//! The [`CommitLog`] closes that window with a write-ahead intent record:
//!
//! 1. **begin** — before installing anything, the engine persists a
//!    [`CommitRecord`] carrying the batch id, a digest of every partition
//!    group, and the pre-images of every key the batch will touch;
//! 2. the partition groups are installed;
//! 3. **seal** — the record is marked sealed.
//!
//! Recovery inspects the log: sealed records describe batches that
//! completed (their groups are durable in the NVM slabs, so replay is an
//! acknowledgement), while an *unsealed* record marks a torn batch whose
//! pre-images must be restored so the batch disappears atomically.
//!
//! The log models an NVM-resident structure: its contents survive
//! `crash_and_recover`, and every `begin`/`seal` charges a sequential
//! write to the NVM device it was built with.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use prism_types::checksum::Crc32;
use prism_types::{Key, Nanos, Value};

use crate::Device;

/// One partition's slice of a cross-partition commit.
#[derive(Debug, Clone)]
pub struct CommitPart {
    /// Partition the group targets.
    pub partition: usize,
    /// Number of entries in the group.
    pub entries: u64,
    /// Order-sensitive digest of the group's keys and value lengths,
    /// letting recovery (and tests) cross-check a record against the
    /// batch it described.
    pub digest: u64,
    /// State of every touched key *before* the batch: `Some(value)` to
    /// restore on rollback, `None` if the key was absent (rollback
    /// deletes it).
    pub pre_images: Vec<(Key, Option<Value>)>,
}

impl CommitPart {
    /// Approximate encoded size of the record slice, charged to NVM.
    fn encoded_size(&self) -> u64 {
        let images: u64 = self
            .pre_images
            .iter()
            .map(|(k, v)| k.len() as u64 + v.as_ref().map_or(0, |v| v.len() as u64) + 9)
            .sum();
        // partition + entry count + digest + per-image payloads.
        24 + images
    }
}

/// A persisted commit intent: unsealed records are torn commits.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// Monotone batch id assigned by [`CommitLog::begin`].
    pub batch_id: u64,
    /// One slice per touched partition, ascending by partition.
    pub parts: Vec<CommitPart>,
    /// True once every partition group was installed.
    pub sealed: bool,
    /// CRC32 over the batch id and every part (partition, entries,
    /// digest, pre-images), computed at [`CommitLog::begin`]. The `sealed`
    /// flag is excluded: sealing mutates the record in place after the
    /// intent bytes were already persisted.
    pub checksum: u32,
}

impl CommitRecord {
    /// CRC32 over the record's intent content (everything but `sealed`).
    pub fn compute_checksum(batch_id: u64, parts: &[CommitPart]) -> u32 {
        let mut crc = Crc32::new();
        crc.update_u64(batch_id);
        for part in parts {
            crc.update_u64(part.partition as u64);
            crc.update_u64(part.entries);
            crc.update_u64(part.digest);
            crc.update_u64(part.pre_images.len() as u64);
            for (key, value) in &part.pre_images {
                crc.update_u64(key.id());
                match value {
                    Some(v) => {
                        crc.update_u64(1 + v.len() as u64);
                        crc.update(v.as_bytes());
                    }
                    None => crc.update_u64(0),
                }
            }
        }
        crc.finish()
    }

    /// True when the stored checksum still matches the record's content.
    pub fn verify(&self) -> bool {
        self.checksum == CommitRecord::compute_checksum(self.batch_id, &self.parts)
    }
}

/// Order-sensitive digest over a partition group's keys and value sizes
/// (FNV-1a). Exposed so the engine and tests derive identical digests.
pub fn group_digest<'a>(entries: impl Iterator<Item = (&'a Key, Option<u64>)>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u64| {
        hash ^= byte;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (key, value_len) in entries {
        mix(key.id());
        match value_len {
            Some(len) => mix(len ^ 0x5bd1_e995),
            None => mix(0xdead_beef),
        }
    }
    hash
}

/// Cumulative commit-log counters (monotone, survive crash).
#[derive(Debug, Default, Clone, Copy)]
pub struct CommitLogCounters {
    /// Intents persisted via [`CommitLog::begin`].
    pub intents: u64,
    /// Records sealed via [`CommitLog::seal`].
    pub seals: u64,
    /// Sealed records acknowledged by recovery.
    pub replayed: u64,
    /// Unsealed records handed to recovery for rollback.
    pub rolled_back: u64,
    /// Records dropped by recovery because their checksum failed: a
    /// corrupt intent can be trusted neither for replay nor rollback.
    pub corrupt_dropped: u64,
}

#[derive(Debug, Default)]
struct CommitLogInner {
    records: Vec<CommitRecord>,
    counters: CommitLogCounters,
}

/// NVM-resident intent log making multi-partition batches all-or-nothing.
#[derive(Debug)]
pub struct CommitLog {
    device: Arc<Device>,
    next_batch_id: AtomicU64,
    inner: Mutex<CommitLogInner>,
}

/// Sealed records older than the newest this many are garbage collected
/// on the next `begin`; recovery drains everything anyway, this only
/// bounds steady-state memory.
const SEALED_RETAIN: usize = 64;

impl CommitLog {
    /// Create an empty log charging its writes to `device` (the NVM tier).
    pub fn new(device: Arc<Device>) -> Self {
        CommitLog {
            device,
            next_batch_id: AtomicU64::new(1),
            inner: Mutex::new(CommitLogInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CommitLogInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Persist a commit intent for a multi-partition batch. Returns the
    /// batch id and the simulated time of the log append.
    pub fn begin(&self, parts: Vec<CommitPart>) -> (u64, Nanos) {
        let batch_id = self.next_batch_id.fetch_add(1, Ordering::Relaxed);
        let bytes: u64 = 16 + parts.iter().map(CommitPart::encoded_size).sum::<u64>();
        let cost = self.device.write_sequential(bytes);
        let mut inner = self.lock();
        inner.counters.intents += 1;
        // Bound sealed-record retention; unsealed records are never GC'd.
        let sealed = inner.records.iter().filter(|r| r.sealed).count();
        if sealed > SEALED_RETAIN {
            let mut to_drop = sealed - SEALED_RETAIN;
            inner.records.retain(|r| {
                if r.sealed && to_drop > 0 {
                    to_drop -= 1;
                    false
                } else {
                    true
                }
            });
        }
        let checksum = CommitRecord::compute_checksum(batch_id, &parts);
        inner.records.push(CommitRecord {
            batch_id,
            parts,
            sealed: false,
            checksum,
        });
        (batch_id, cost)
    }

    /// Seal `batch_id` after every partition group installed. Returns the
    /// simulated time of the seal append; sealing an unknown id is a
    /// no-op (recovery may already have collected it).
    pub fn seal(&self, batch_id: u64) -> Nanos {
        let cost = self.device.write_sequential(16);
        let mut inner = self.lock();
        if let Some(record) = inner
            .records
            .iter_mut()
            .find(|r| r.batch_id == batch_id && !r.sealed)
        {
            record.sealed = true;
            inner.counters.seals += 1;
        }
        cost
    }

    /// Drain the log for recovery: sealed records (acknowledged, in
    /// commit order) and unsealed records (torn, to roll back — newest
    /// first, the order rollback must apply pre-images in).
    ///
    /// Every record is checksum-verified first; corrupt records are
    /// dropped and counted in [`CommitLogCounters::corrupt_dropped`]
    /// rather than replayed or rolled back from untrustworthy bytes.
    pub fn drain_for_recovery(&self) -> (Vec<CommitRecord>, Vec<CommitRecord>) {
        let mut inner = self.lock();
        let records = std::mem::take(&mut inner.records);
        let before = records.len();
        let records: Vec<CommitRecord> = records.into_iter().filter(CommitRecord::verify).collect();
        inner.counters.corrupt_dropped += (before - records.len()) as u64;
        let (sealed, mut torn): (Vec<_>, Vec<_>) = records.into_iter().partition(|r| r.sealed);
        torn.sort_by_key(|record| std::cmp::Reverse(record.batch_id));
        inner.counters.replayed += sealed.len() as u64;
        inner.counters.rolled_back += torn.len() as u64;
        (sealed, torn)
    }

    /// Flip one bit in the stored pre-image bytes (or the checksum, for
    /// records without pre-image payload) of record `batch_id` —
    /// the fault-injection hook used by chaos tests to model a corrupted
    /// intent. Returns true when a record was tampered with.
    pub fn corrupt_record(&self, batch_id: u64) -> bool {
        let mut inner = self.lock();
        let Some(record) = inner.records.iter_mut().find(|r| r.batch_id == batch_id) else {
            return false;
        };
        for part in &mut record.parts {
            for (_, value) in &mut part.pre_images {
                if let Some(v) = value {
                    if !v.is_empty() {
                        let mut bytes = v.as_bytes().to_vec();
                        bytes[0] ^= 0x01;
                        *v = Value::from_vec(bytes);
                        return true;
                    }
                }
            }
        }
        record.checksum ^= 0x1;
        true
    }

    /// Number of records currently in the log (sealed + unsealed).
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of unsealed (in-flight or torn) records.
    pub fn unsealed(&self) -> usize {
        self.lock().records.iter().filter(|r| !r.sealed).count()
    }

    /// Cumulative counters.
    pub fn counters(&self) -> CommitLogCounters {
        self.lock().counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceProfile;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceProfile::optane_nvm(1 << 20)))
    }

    fn part(partition: usize) -> CommitPart {
        let key = Key::from_id(partition as u64);
        CommitPart {
            partition,
            entries: 1,
            digest: group_digest([(&key, Some(8u64))].into_iter()),
            pre_images: vec![(key, Some(Value::filled(8, 1)))],
        }
    }

    #[test]
    fn begin_seal_lifecycle_and_costs() {
        let dev = device();
        let log = CommitLog::new(dev.clone());
        let (id, begin_cost) = log.begin(vec![part(0), part(2)]);
        assert!(begin_cost > Nanos::ZERO);
        assert_eq!(log.len(), 1);
        assert_eq!(log.unsealed(), 1);
        let seal_cost = log.seal(id);
        assert!(seal_cost > Nanos::ZERO);
        assert_eq!(log.unsealed(), 0);
        assert!(dev.counters().as_tier_io().bytes_written > 0);
        let counters = log.counters();
        assert_eq!(counters.intents, 1);
        assert_eq!(counters.seals, 1);
    }

    #[test]
    fn recovery_partitions_sealed_from_torn_newest_first() {
        let log = CommitLog::new(device());
        let (a, _) = log.begin(vec![part(0)]);
        log.seal(a);
        let (b, _) = log.begin(vec![part(1)]);
        let (c, _) = log.begin(vec![part(2)]);
        let (sealed, torn) = log.drain_for_recovery();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].batch_id, a);
        let torn_ids: Vec<u64> = torn.iter().map(|r| r.batch_id).collect();
        assert_eq!(torn_ids, vec![c, b], "rollback must run newest first");
        assert!(log.is_empty());
        let counters = log.counters();
        assert_eq!(counters.replayed, 1);
        assert_eq!(counters.rolled_back, 2);
    }

    #[test]
    fn sealing_unknown_record_is_a_noop_and_digest_is_order_sensitive() {
        let log = CommitLog::new(device());
        log.seal(999);
        assert_eq!(log.counters().seals, 0);
        let k1 = Key::from_id(1);
        let k2 = Key::from_id(2);
        let ab = group_digest([(&k1, Some(4u64)), (&k2, None)].into_iter());
        let ba = group_digest([(&k2, None), (&k1, Some(4u64))].into_iter());
        assert_ne!(ab, ba);
        assert_ne!(
            group_digest([(&k1, Some(4u64))].into_iter()),
            group_digest([(&k1, Some(5u64))].into_iter()),
        );
    }

    #[test]
    fn checksums_round_trip_and_catch_tampering() {
        let log = CommitLog::new(device());
        let (a, _) = log.begin(vec![part(0)]);
        log.seal(a);
        let (b, _) = log.begin(vec![part(1)]);
        // Sealing does not invalidate the checksum (it covers intent
        // content only); tampering with record `b`'s pre-image does.
        assert!(log.corrupt_record(b));
        let (sealed, torn) = log.drain_for_recovery();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].batch_id, a);
        assert!(sealed[0].verify());
        assert!(
            torn.is_empty(),
            "a corrupt torn record must not be rolled back"
        );
        assert_eq!(log.counters().corrupt_dropped, 1);
        assert_eq!(log.counters().rolled_back, 0);
    }

    #[test]
    fn corrupting_unknown_record_reports_false() {
        let log = CommitLog::new(device());
        assert!(!log.corrupt_record(123));
    }

    #[test]
    fn sealed_records_are_garbage_collected_beyond_retention() {
        let log = CommitLog::new(device());
        for _ in 0..(SEALED_RETAIN + 10) {
            let (id, _) = log.begin(vec![part(0)]);
            log.seal(id);
        }
        assert!(log.len() <= SEALED_RETAIN + 1);
        assert_eq!(log.unsealed(), 0);
    }
}
