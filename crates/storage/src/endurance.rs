//! Flash endurance / lifetime model (Figure 12 of the paper).

use crate::profile::DeviceProfile;

/// Warranty period (years) over which DWPD ratings are specified.
pub const WARRANTY_YEARS: f64 = 5.0;

const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

/// Inputs of the lifetime projection the paper uses for Figure 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    /// Logical database size in bytes (the paper assumes 600 GB).
    pub db_size_bytes: u64,
    /// Client request rate in operations per second.
    pub request_rate_ops: f64,
    /// Fraction of requests that are writes (updates/inserts).
    pub write_fraction: f64,
    /// Average object size in bytes.
    pub object_size_bytes: u64,
    /// Write amplification on flash: physical flash bytes written per
    /// logical byte the client wrote (includes compaction rewrites).
    pub flash_write_amplification: f64,
    /// Fraction of client-written bytes that ever reach flash at all (in
    /// PrismDB, hot objects that stay pinned on NVM never cost flash
    /// endurance).
    pub flash_write_fraction: f64,
}

impl EnduranceModel {
    /// Flash bytes written per second under this model.
    pub fn flash_bytes_per_sec(&self) -> f64 {
        self.request_rate_ops
            * self.write_fraction
            * self.object_size_bytes as f64
            * self.flash_write_fraction
            * self.flash_write_amplification
    }

    /// Projected lifetime in years of the given flash device under this
    /// write load.
    ///
    /// Returns `f64::INFINITY` for devices with unlimited endurance or when
    /// the workload writes nothing to flash.
    pub fn lifetime_years(&self, flash: &DeviceProfile) -> f64 {
        lifetime_years(flash, self.flash_bytes_per_sec())
    }
}

/// Projected lifetime in years of `flash` when `flash_bytes_per_sec` bytes
/// are written to it continuously.
///
/// # Example
///
/// ```
/// use prism_storage::{lifetime_years, DeviceProfile};
///
/// let qlc = DeviceProfile::qlc_flash(600 << 30);
/// // A light ~300 KB/s flash write rate comfortably exceeds a 5 year lifetime.
/// assert!(lifetime_years(&qlc, 300_000.0) > 5.0);
/// ```
pub fn lifetime_years(flash: &DeviceProfile, flash_bytes_per_sec: f64) -> f64 {
    if flash_bytes_per_sec <= 0.0 {
        return f64::INFINITY;
    }
    let endurance = flash.endurance_bytes();
    if endurance.is_infinite() {
        return f64::INFINITY;
    }
    endurance / (flash_bytes_per_sec * SECONDS_PER_YEAR)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(rate: f64, write_fraction: f64) -> EnduranceModel {
        EnduranceModel {
            db_size_bytes: 600 << 30,
            request_rate_ops: rate,
            write_fraction,
            object_size_bytes: 1024,
            flash_write_amplification: 2.0,
            flash_write_fraction: 0.7,
        }
    }

    #[test]
    fn read_only_workload_never_wears_out() {
        let qlc = DeviceProfile::qlc_flash(600 << 30);
        assert!(model(100_000.0, 0.0).lifetime_years(&qlc).is_infinite());
    }

    #[test]
    fn heavier_write_rate_shortens_lifetime() {
        let qlc = DeviceProfile::qlc_flash(600 << 30);
        let light = model(10_000.0, 0.1).lifetime_years(&qlc);
        let heavy = model(100_000.0, 0.5).lifetime_years(&qlc);
        assert!(light > heavy);
        assert!(heavy > 0.0);
    }

    #[test]
    fn tlc_outlives_qlc_under_same_load() {
        let qlc = DeviceProfile::qlc_flash(600 << 30);
        let tlc = DeviceProfile::tlc_flash(600 << 30);
        let m = model(50_000.0, 0.3);
        assert!(m.lifetime_years(&tlc) > m.lifetime_years(&qlc));
    }

    #[test]
    fn read_dominated_production_workload_meets_lifetime_target() {
        // Paper §7.2: read-dominated workloads (e.g. 99.8% reads in TAO)
        // comfortably meet the 3-5 year lifetime target on QLC.
        let qlc = DeviceProfile::qlc_flash(600 << 30);
        let read_heavy = model(100_000.0, 0.002).lifetime_years(&qlc);
        assert!(read_heavy > 5.0, "lifetime {read_heavy}");
    }

    #[test]
    fn update_heavy_high_rate_wears_out_early() {
        let qlc = DeviceProfile::qlc_flash(600 << 30);
        let heavy = model(500_000.0, 0.5).lifetime_years(&qlc);
        assert!(heavy < 3.0, "lifetime {heavy}");
    }

    #[test]
    fn dwpd_infinite_device_is_immortal() {
        let dram = DeviceProfile::dram(1 << 30);
        assert!(lifetime_years(&dram, 1e9).is_infinite());
    }
}
