//! Storage cost model (Table 2 and Figure 9 of the paper).

use crate::profile::DeviceProfile;

/// Dollar-cost summary of a storage configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Total usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Total hardware cost in dollars.
    pub total_dollars: f64,
    /// Blended cost per gigabyte.
    pub cost_per_gb: f64,
}

/// Compute the capacity-weighted blended cost per gigabyte of a set of
/// devices, each contributing `capacity_bytes` of usable space.
///
/// The paper uses this to show that a multi-tier setup with ~11 % NVM costs
/// about the same per bit as a single-tier TLC deployment ($0.34/GB vs
/// $0.31/GB) while performing far better.
///
/// # Example
///
/// ```
/// use prism_storage::{blended_cost_per_gb, DeviceProfile};
///
/// let nvm = DeviceProfile::optane_nvm(11 << 30);
/// let qlc = DeviceProfile::qlc_flash(89 << 30);
/// let cost = blended_cost_per_gb(&[(&nvm, 11 << 30), (&qlc, 89 << 30)]);
/// assert!(cost > 0.3 && cost < 0.4);
/// ```
pub fn blended_cost_per_gb(devices: &[(&DeviceProfile, u64)]) -> f64 {
    breakdown(devices).cost_per_gb
}

/// Full cost breakdown for a set of devices.
pub fn breakdown(devices: &[(&DeviceProfile, u64)]) -> CostBreakdown {
    let mut capacity_bytes = 0u64;
    let mut total_dollars = 0f64;
    for (profile, capacity) in devices {
        capacity_bytes += capacity;
        total_dollars += profile.cost_per_gb * (*capacity as f64 / (1u64 << 30) as f64);
    }
    let gb = capacity_bytes as f64 / (1u64 << 30) as f64;
    CostBreakdown {
        capacity_bytes,
        total_dollars,
        cost_per_gb: if gb > 0.0 { total_dollars / gb } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_device_cost_equals_profile_cost() {
        let qlc = DeviceProfile::qlc_flash(100 << 30);
        let cost = blended_cost_per_gb(&[(&qlc, 100 << 30)]);
        assert!((cost - qlc.cost_per_gb).abs() < 1e-9);
    }

    #[test]
    fn paper_het11_configuration_matches_table2() {
        // Table 2: 89% QLC + 11% NVM lands at roughly $0.3/GB.
        let nvm = DeviceProfile::optane_nvm(11 << 30);
        let qlc = DeviceProfile::qlc_flash(89 << 30);
        let cost = blended_cost_per_gb(&[(&nvm, 11 << 30), (&qlc, 89 << 30)]);
        assert!((cost - 0.364).abs() < 0.05, "cost {cost}");
    }

    #[test]
    fn empty_set_costs_nothing() {
        let b = breakdown(&[]);
        assert_eq!(b.capacity_bytes, 0);
        assert_eq!(b.cost_per_gb, 0.0);
    }

    #[test]
    fn more_nvm_costs_more() {
        let total = 100u64 << 30;
        let mut last = 0.0;
        for pct in [5u64, 10, 20, 50, 100] {
            let nvm_cap = total * pct / 100;
            let qlc_cap = total - nvm_cap;
            let nvm = DeviceProfile::optane_nvm(nvm_cap.max(1));
            let qlc = DeviceProfile::qlc_flash(qlc_cap.max(1));
            let cost = blended_cost_per_gb(&[(&nvm, nvm_cap), (&qlc, qlc_cap)]);
            assert!(cost > last, "{pct}% nvm: {cost} <= {last}");
            last = cost;
        }
    }
}
