//! Device profiles and CPU cost constants.

use prism_types::Nanos;
use serde::{Deserialize, Serialize};

/// The class of a storage device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// DRAM (used only for cache latency modelling, never persistent).
    Dram,
    /// Fast non-volatile memory: Optane SSD / Z-NAND class devices.
    Nvm,
    /// TLC NAND flash (3 bits/cell), the datacenter default the paper
    /// compares against.
    TlcNand,
    /// QLC NAND flash (4 bits/cell): cheapest and densest, slowest and
    /// least durable.
    QlcNand,
}

impl DeviceKind {
    /// Short lowercase label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::Dram => "dram",
            DeviceKind::Nvm => "nvm",
            DeviceKind::TlcNand => "tlc",
            DeviceKind::QlcNand => "qlc",
        }
    }
}

/// Performance, cost and endurance characteristics of one device.
///
/// The numbers in the constructors come from Table 1 of the paper (Optane
/// P5800X and Intel 660p QLC measured with fio) plus public spec sheets for
/// the TLC and DRAM points; what matters for reproduction is the relative
/// gaps, which these values preserve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Device class.
    pub kind: DeviceKind,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Latency of one random 4 KB read.
    pub read_latency_4k: Nanos,
    /// Latency of one random 4 KB write.
    pub write_latency_4k: Nanos,
    /// Sequential read bandwidth in MB/s.
    pub seq_read_mbps: u64,
    /// Sequential write bandwidth in MB/s.
    pub seq_write_mbps: u64,
    /// Dollar cost per gigabyte.
    pub cost_per_gb: f64,
    /// Endurance in drive-writes-per-day over the warranty period.
    pub dwpd: f64,
}

impl DeviceProfile {
    /// DRAM profile (for cache modelling).
    pub fn dram(capacity_bytes: u64) -> Self {
        DeviceProfile {
            kind: DeviceKind::Dram,
            capacity_bytes,
            read_latency_4k: Nanos::from_nanos(200),
            write_latency_4k: Nanos::from_nanos(200),
            seq_read_mbps: 20_000,
            seq_write_mbps: 20_000,
            cost_per_gb: 4.0,
            dwpd: f64::INFINITY,
        }
    }

    /// Intel Optane SSD P5800X class NVM device (Table 1: 6 µs random 4 KB
    /// read, $2.5/GB, 200 DWPD).
    pub fn optane_nvm(capacity_bytes: u64) -> Self {
        DeviceProfile {
            kind: DeviceKind::Nvm,
            capacity_bytes,
            read_latency_4k: Nanos::from_micros(6),
            write_latency_4k: Nanos::from_micros(10),
            seq_read_mbps: 6_500,
            seq_write_mbps: 5_500,
            cost_per_gb: 2.5,
            dwpd: 200.0,
        }
    }

    /// Intel 760p class TLC NAND device ($0.31/GB per the paper's text).
    pub fn tlc_flash(capacity_bytes: u64) -> Self {
        DeviceProfile {
            kind: DeviceKind::TlcNand,
            capacity_bytes,
            read_latency_4k: Nanos::from_micros(110),
            write_latency_4k: Nanos::from_micros(45),
            seq_read_mbps: 3_000,
            seq_write_mbps: 1_300,
            cost_per_gb: 0.31,
            dwpd: 0.8,
        }
    }

    /// Intel 660p class QLC NAND device (Table 1: 391 µs random 4 KB read,
    /// $0.1/GB, 0.1 DWPD).
    pub fn qlc_flash(capacity_bytes: u64) -> Self {
        DeviceProfile {
            kind: DeviceKind::QlcNand,
            capacity_bytes,
            read_latency_4k: Nanos::from_micros(391),
            write_latency_4k: Nanos::from_micros(120),
            seq_read_mbps: 1_800,
            seq_write_mbps: 900,
            cost_per_gb: 0.1,
            dwpd: 0.1,
        }
    }

    /// Total bytes that may be written to the device before it wears out,
    /// assuming the industry-standard warranty window.
    pub fn endurance_bytes(&self) -> f64 {
        if self.dwpd.is_infinite() {
            return f64::INFINITY;
        }
        self.capacity_bytes as f64 * self.dwpd * 365.0 * crate::endurance::WARRANTY_YEARS
    }
}

/// CPU cost constants charged by engines for work that is not device I/O.
///
/// These model the "CPU becomes the bottleneck once most requests are served
/// from DRAM or NVM" effect the paper observes in §3, including the large
/// cost of merge-sorting objects during LSM compactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuCosts {
    /// Cost of a memtable / B-tree / hash index lookup or insert.
    pub index_op: Nanos,
    /// Cost of probing one bloom filter.
    pub bloom_probe: Nanos,
    /// Cost of comparing + copying one object during a merge sort.
    pub merge_per_object: Nanos,
    /// Cost of updating the popularity tracker for one access.
    pub tracker_op: Nanos,
    /// Cost of serving a read from a DRAM cache.
    pub dram_hit: Nanos,
    /// Fixed per-operation request handling overhead.
    pub request_overhead: Nanos,
    /// Extra per-operation overhead when an engine busy-polls for I/O
    /// completions (the SPDK cost the paper notes for SpanDB).
    pub polling_overhead: Nanos,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            index_op: Nanos::from_nanos(400),
            bloom_probe: Nanos::from_nanos(150),
            merge_per_object: Nanos::from_nanos(700),
            tracker_op: Nanos::from_nanos(150),
            dram_hit: Nanos::from_nanos(250),
            request_overhead: Nanos::from_nanos(600),
            polling_overhead: Nanos::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latency_gap_is_preserved() {
        let nvm = DeviceProfile::optane_nvm(1 << 30);
        let qlc = DeviceProfile::qlc_flash(1 << 30);
        let ratio = qlc.read_latency_4k.as_nanos() as f64 / nvm.read_latency_4k.as_nanos() as f64;
        assert!((ratio - 65.0).abs() < 2.0, "read latency ratio {ratio}");
    }

    #[test]
    fn table1_cost_and_endurance_gaps() {
        let nvm = DeviceProfile::optane_nvm(1 << 30);
        let qlc = DeviceProfile::qlc_flash(1 << 30);
        assert!((nvm.cost_per_gb / qlc.cost_per_gb - 25.0).abs() < 1.0);
        assert!((nvm.dwpd / qlc.dwpd - 2000.0).abs() < 1.0);
    }

    #[test]
    fn ordering_of_tiers() {
        let dram = DeviceProfile::dram(1 << 30);
        let nvm = DeviceProfile::optane_nvm(1 << 30);
        let tlc = DeviceProfile::tlc_flash(1 << 30);
        let qlc = DeviceProfile::qlc_flash(1 << 30);
        assert!(dram.read_latency_4k < nvm.read_latency_4k);
        assert!(nvm.read_latency_4k < tlc.read_latency_4k);
        assert!(tlc.read_latency_4k < qlc.read_latency_4k);
        assert!(dram.cost_per_gb > nvm.cost_per_gb);
        assert!(nvm.cost_per_gb > tlc.cost_per_gb);
        assert!(tlc.cost_per_gb > qlc.cost_per_gb);
    }

    #[test]
    fn endurance_bytes_scales_with_capacity_and_dwpd() {
        let small = DeviceProfile::qlc_flash(1 << 30);
        let big = DeviceProfile::qlc_flash(10 << 30);
        assert!(big.endurance_bytes() > 9.0 * small.endurance_bytes());
        assert!(DeviceProfile::dram(1).endurance_bytes().is_infinite());
    }

    #[test]
    fn labels() {
        assert_eq!(DeviceKind::Nvm.label(), "nvm");
        assert_eq!(DeviceKind::QlcNand.label(), "qlc");
        assert_eq!(DeviceKind::TlcNand.label(), "tlc");
        assert_eq!(DeviceKind::Dram.label(), "dram");
    }
}
