//! Request key distributions.

use rand::rngs::StdRng;
use rand::Rng;

/// The request distribution of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Every key is equally likely.
    Uniform,
    /// YCSB-style scrambled Zipfian with the given theta (0.99 is the YCSB
    /// default; the paper sweeps 0.4–1.4 in Figure 11).
    Zipfian(f64),
    /// Recency-skewed: the most recently inserted keys are the most popular
    /// (YCSB-D's "latest" distribution).
    Latest(f64),
}

impl Distribution {
    /// Short label used in experiment tables ("unif", "zipf0.99", ...).
    pub fn label(&self) -> String {
        match self {
            Distribution::Uniform => "unif".to_string(),
            Distribution::Zipfian(theta) => format!("zipf{theta:.2}"),
            Distribution::Latest(theta) => format!("latest{theta:.2}"),
        }
    }
}

/// Draws keys in `[0, n)` according to a [`Distribution`].
#[derive(Debug, Clone)]
pub struct KeyChooser {
    distribution: Distribution,
    n: u64,
    zipf: Option<ZipfianState>,
}

#[derive(Debug, Clone)]
struct ZipfianState {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // For large n this is O(n) but it is computed once per chooser; the
    // benchmark key counts (<= a few million) keep this cheap.
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl ZipfianState {
    fn new(n: u64, theta: f64) -> Self {
        let n = n.max(1);
        let zetan = zeta(n, theta);
        let zeta2theta = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        ZipfianState {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Draw a rank in `[0, n)`; rank 0 is the most popular.
    fn next_rank(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Scramble a rank into the key space so popular keys are spread across the
/// key range (YCSB's scrambled Zipfian), using an FNV-1a hash.
fn scramble(rank: u64, n: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in rank.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash % n.max(1)
}

impl KeyChooser {
    /// Create a chooser over the key space `[0, n)`.
    pub fn new(distribution: Distribution, n: u64) -> Self {
        let zipf = match distribution {
            Distribution::Zipfian(theta) | Distribution::Latest(theta) => {
                Some(ZipfianState::new(n, theta))
            }
            Distribution::Uniform => None,
        };
        KeyChooser {
            distribution,
            n: n.max(1),
            zipf,
        }
    }

    /// The key-space size this chooser was built for.
    pub fn key_space(&self) -> u64 {
        self.n
    }

    /// Draw the next key id. `newest` is the id of the most recently
    /// inserted key (only used by the latest distribution).
    pub fn next(&self, rng: &mut StdRng, newest: u64) -> u64 {
        match self.distribution {
            Distribution::Uniform => rng.gen_range(0..self.n),
            Distribution::Zipfian(_) => {
                let rank = self.zipf.as_ref().expect("zipf state").next_rank(rng);
                scramble(rank, self.n)
            }
            Distribution::Latest(_) => {
                let rank = self.zipf.as_ref().expect("zipf state").next_rank(rng);
                newest.saturating_sub(rank.min(newest))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn frequencies(dist: Distribution, n: u64, draws: usize) -> HashMap<u64, u64> {
        let chooser = KeyChooser::new(dist, n);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = HashMap::new();
        for _ in 0..draws {
            *counts.entry(chooser.next(&mut rng, n - 1)).or_insert(0u64) += 1;
        }
        counts
    }

    #[test]
    fn uniform_draws_cover_the_space_evenly() {
        let counts = frequencies(Distribution::Uniform, 100, 50_000);
        assert!(counts.len() > 95);
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        assert!(max < min * 3, "uniform counts too skewed: {min}..{max}");
    }

    #[test]
    fn zipfian_is_heavily_skewed() {
        let counts = frequencies(Distribution::Zipfian(0.99), 10_000, 100_000);
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_10: u64 = sorted.iter().take(10).sum();
        // With theta = 0.99 the hottest handful of keys take a large share.
        assert!(
            top_10 as f64 > 0.2 * 100_000.0,
            "top-10 keys only got {top_10} of 100k draws"
        );
        // All keys stay in range.
        assert!(counts.keys().all(|&k| k < 10_000));
    }

    #[test]
    fn higher_theta_means_more_skew() {
        let skew = |theta: f64| {
            let counts = frequencies(Distribution::Zipfian(theta), 1_000, 50_000);
            let mut sorted: Vec<u64> = counts.values().copied().collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted.iter().take(5).sum::<u64>()
        };
        assert!(skew(1.2) > skew(0.8));
        assert!(skew(0.8) > skew(0.4));
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let chooser = KeyChooser::new(Distribution::Latest(0.99), 10_000);
        let mut rng = StdRng::seed_from_u64(3);
        let newest = 9_999;
        let mut recent = 0;
        let draws = 10_000;
        for _ in 0..draws {
            let key = chooser.next(&mut rng, newest);
            assert!(key <= newest);
            if newest - key < 100 {
                recent += 1;
            }
        }
        assert!(
            recent as f64 > 0.5 * draws as f64,
            "only {recent}/{draws} draws hit the 100 newest keys"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Distribution::Uniform.label(), "unif");
        assert_eq!(Distribution::Zipfian(0.99).label(), "zipf0.99");
        assert_eq!(Distribution::Latest(0.99).label(), "latest0.99");
    }

    #[test]
    fn tiny_key_spaces_do_not_panic() {
        let chooser = KeyChooser::new(Distribution::Zipfian(0.99), 1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(chooser.next(&mut rng, 0), 0);
        }
    }
}
