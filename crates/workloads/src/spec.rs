//! Workload specifications: YCSB A–F and the Twitter clusters.

use crate::dist::Distribution;
use crate::stream::OpStream;

/// The operation mix of a workload; the fractions sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Point reads.
    pub reads: f64,
    /// Blind updates of existing keys.
    pub updates: f64,
    /// Inserts of new keys.
    pub inserts: f64,
    /// Read-modify-writes.
    pub read_modify_writes: f64,
    /// Range scans.
    pub scans: f64,
}

impl OpMix {
    /// Fraction of operations that write.
    pub fn write_fraction(&self) -> f64 {
        self.updates + self.inserts + self.read_modify_writes
    }

    fn normalized(mut self) -> Self {
        let sum = self.reads + self.updates + self.inserts + self.read_modify_writes + self.scans;
        if sum > 0.0 {
            self.reads /= sum;
            self.updates /= sum;
            self.inserts /= sum;
            self.read_modify_writes /= sum;
            self.scans /= sum;
        }
        self
    }
}

/// A complete workload description.
///
/// Build one with the YCSB / Twitter constructors and customise it with the
/// `with_*` methods, then turn it into an operation stream with
/// [`Workload::stream`].
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name used in experiment tables.
    pub name: String,
    /// Number of keys loaded before the measured phase.
    pub record_count: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// Request distribution for reads/updates.
    pub distribution: Distribution,
    /// Request distribution for writes when it differs from reads (the
    /// Twitter mixed trace has zipfian reads but uniform writes).
    pub write_distribution: Option<Distribution>,
    /// Object size in bytes.
    pub value_size: usize,
    /// Maximum scan length (YCSB-E picks a random length up to this).
    pub max_scan_len: usize,
}

impl Workload {
    fn base(name: &str, record_count: u64, mix: OpMix) -> Self {
        Workload {
            name: name.to_string(),
            record_count: record_count.max(1),
            mix: mix.normalized(),
            distribution: Distribution::Zipfian(0.99),
            write_distribution: None,
            value_size: 1024,
            max_scan_len: 100,
        }
    }

    /// YCSB-A: 50 % reads, 50 % updates (write heavy).
    pub fn ycsb_a(record_count: u64) -> Self {
        Self::base(
            "ycsb-a",
            record_count,
            OpMix {
                reads: 0.5,
                updates: 0.5,
                inserts: 0.0,
                read_modify_writes: 0.0,
                scans: 0.0,
            },
        )
    }

    /// YCSB-B: 95 % reads, 5 % updates (read heavy).
    pub fn ycsb_b(record_count: u64) -> Self {
        Self::base(
            "ycsb-b",
            record_count,
            OpMix {
                reads: 0.95,
                updates: 0.05,
                inserts: 0.0,
                read_modify_writes: 0.0,
                scans: 0.0,
            },
        )
    }

    /// YCSB-C: 100 % reads (read only).
    pub fn ycsb_c(record_count: u64) -> Self {
        Self::base(
            "ycsb-c",
            record_count,
            OpMix {
                reads: 1.0,
                updates: 0.0,
                inserts: 0.0,
                read_modify_writes: 0.0,
                scans: 0.0,
            },
        )
    }

    /// YCSB-D: 95 % reads of recently inserted keys, 5 % inserts.
    pub fn ycsb_d(record_count: u64) -> Self {
        let mut w = Self::base(
            "ycsb-d",
            record_count,
            OpMix {
                reads: 0.95,
                updates: 0.0,
                inserts: 0.05,
                read_modify_writes: 0.0,
                scans: 0.0,
            },
        );
        w.distribution = Distribution::Latest(0.99);
        w
    }

    /// YCSB-E: 95 % scans, 5 % inserts (scan heavy).
    pub fn ycsb_e(record_count: u64) -> Self {
        Self::base(
            "ycsb-e",
            record_count,
            OpMix {
                reads: 0.0,
                updates: 0.0,
                inserts: 0.05,
                read_modify_writes: 0.0,
                scans: 0.95,
            },
        )
    }

    /// YCSB-F: 50 % reads, 50 % read-modify-writes.
    pub fn ycsb_f(record_count: u64) -> Self {
        Self::base(
            "ycsb-f",
            record_count,
            OpMix {
                reads: 0.5,
                updates: 0.0,
                inserts: 0.0,
                read_modify_writes: 0.5,
                scans: 0.0,
            },
        )
    }

    /// The YCSB workload with the given letter (A–F).
    ///
    /// # Panics
    ///
    /// Panics if `letter` is not in `A..=F`.
    pub fn ycsb(letter: char, record_count: u64) -> Self {
        match letter.to_ascii_lowercase() {
            'a' => Self::ycsb_a(record_count),
            'b' => Self::ycsb_b(record_count),
            'c' => Self::ycsb_c(record_count),
            'd' => Self::ycsb_d(record_count),
            'e' => Self::ycsb_e(record_count),
            'f' => Self::ycsb_f(record_count),
            other => panic!("unknown YCSB workload '{other}'"),
        }
    }

    /// Twitter cluster 39: write-heavy (6 % reads, 94 % writes), uniform
    /// key access.
    pub fn twitter_cluster39(record_count: u64) -> Self {
        let mut w = Self::base(
            "twitter-cluster39",
            record_count,
            OpMix {
                reads: 0.06,
                updates: 0.94,
                inserts: 0.0,
                read_modify_writes: 0.0,
                scans: 0.0,
            },
        );
        w.distribution = Distribution::Uniform;
        w.value_size = 230;
        w
    }

    /// Twitter cluster 19: mixed (75 % reads, 25 % writes), zipfian reads
    /// over tiny (≈102 B) objects with uniform writes.
    pub fn twitter_cluster19(record_count: u64) -> Self {
        let mut w = Self::base(
            "twitter-cluster19",
            record_count,
            OpMix {
                reads: 0.75,
                updates: 0.25,
                inserts: 0.0,
                read_modify_writes: 0.0,
                scans: 0.0,
            },
        );
        w.distribution = Distribution::Zipfian(0.99);
        w.write_distribution = Some(Distribution::Uniform);
        w.value_size = 102;
        w
    }

    /// Twitter cluster 51: read-heavy (90 % reads, 10 % writes), zipfian
    /// access over ≈370 B objects.
    pub fn twitter_cluster51(record_count: u64) -> Self {
        let mut w = Self::base(
            "twitter-cluster51",
            record_count,
            OpMix {
                reads: 0.9,
                updates: 0.1,
                inserts: 0.0,
                read_modify_writes: 0.0,
                scans: 0.0,
            },
        );
        w.distribution = Distribution::Zipfian(0.99);
        w.value_size = 370;
        w
    }

    /// A custom read/update mix (used by the pinning-threshold sweep,
    /// Figure 14c: "YCSB 5/95", "50/50", "95/5").
    pub fn read_update_mix(name: &str, record_count: u64, read_fraction: f64) -> Self {
        Self::base(
            name,
            record_count,
            OpMix {
                reads: read_fraction,
                updates: 1.0 - read_fraction,
                inserts: 0.0,
                read_modify_writes: 0.0,
                scans: 0.0,
            },
        )
    }

    /// Override the request distribution with a Zipfian of the given theta.
    pub fn with_zipf(mut self, theta: f64) -> Self {
        self.distribution = Distribution::Zipfian(theta);
        self
    }

    /// Override the request distribution.
    pub fn with_distribution(mut self, distribution: Distribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Override the object size in bytes.
    pub fn with_value_size(mut self, bytes: usize) -> Self {
        self.value_size = bytes;
        self
    }

    /// Create a deterministic operation stream for this workload.
    pub fn stream(&self, seed: u64) -> OpStream {
        OpStream::new(self.clone(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_types::Op;

    #[test]
    fn ycsb_mixes_match_table4() {
        let a = Workload::ycsb_a(100);
        assert!((a.mix.reads - 0.5).abs() < 1e-9);
        assert!((a.mix.updates - 0.5).abs() < 1e-9);
        let b = Workload::ycsb_b(100);
        assert!((b.mix.reads - 0.95).abs() < 1e-9);
        let c = Workload::ycsb_c(100);
        assert!((c.mix.reads - 1.0).abs() < 1e-9);
        let d = Workload::ycsb_d(100);
        assert!((d.mix.inserts - 0.05).abs() < 1e-9);
        assert!(matches!(d.distribution, Distribution::Latest(_)));
        let e = Workload::ycsb_e(100);
        assert!((e.mix.scans - 0.95).abs() < 1e-9);
        let f = Workload::ycsb_f(100);
        assert!((f.mix.read_modify_writes - 0.5).abs() < 1e-9);
        assert_eq!(Workload::ycsb('A', 10).name, "ycsb-a");
    }

    #[test]
    fn twitter_clusters_match_paper_description() {
        let c39 = Workload::twitter_cluster39(100);
        assert!((c39.mix.write_fraction() - 0.94).abs() < 1e-9);
        assert_eq!(c39.distribution, Distribution::Uniform);
        let c19 = Workload::twitter_cluster19(100);
        assert_eq!(c19.value_size, 102);
        assert_eq!(c19.write_distribution, Some(Distribution::Uniform));
        let c51 = Workload::twitter_cluster51(100);
        assert!((c51.mix.reads - 0.9).abs() < 1e-9);
        assert_eq!(c51.value_size, 370);
    }

    #[test]
    fn op_mix_normalizes() {
        let w = Workload::base(
            "x",
            10,
            OpMix {
                reads: 2.0,
                updates: 2.0,
                inserts: 0.0,
                read_modify_writes: 0.0,
                scans: 0.0,
            },
        );
        assert!((w.mix.reads - 0.5).abs() < 1e-9);
        assert!((w.mix.write_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scan_workload_generates_scans() {
        let w = Workload::ycsb_e(1_000);
        let ops: Vec<Op> = w.stream(1).take(200).collect();
        let scans = ops.iter().filter(|op| matches!(op, Op::Scan(_, _))).count();
        assert!(scans > 150, "expected mostly scans, got {scans}/200");
    }

    #[test]
    #[should_panic(expected = "unknown YCSB workload")]
    fn unknown_ycsb_letter_panics() {
        let _ = Workload::ycsb('z', 10);
    }
}
