//! Workload generators: YCSB, key distributions, and Twitter-trace
//! synthetics.
//!
//! The paper evaluates PrismDB with the YCSB core workloads (A–F) under
//! several Zipfian skew levels, and with three Twitter production cache
//! traces chosen for their read/write mix (write-heavy cluster 39, mixed
//! cluster 19, read-heavy cluster 51). This crate reproduces those
//! workloads as deterministic operation streams:
//!
//! * [`Distribution`] / key choosers — uniform, YCSB-style scrambled
//!   Zipfian, and "latest" (recency-skewed) request distributions,
//! * [`Workload`] — an operation mix (reads / updates / inserts /
//!   read-modify-writes / scans), a key distribution and an object size,
//!   with constructors for YCSB A–F and the Twitter clusters,
//! * [`OpStream`] — an iterator of [`prism_types::Op`] driven by a seeded
//!   RNG, plus a loader for the initial dataset.
//!
//! # Example
//!
//! ```
//! use prism_workloads::Workload;
//!
//! let workload = Workload::ycsb_a(10_000).with_zipf(0.99);
//! let ops: Vec<_> = workload.stream(42).take(1000).collect();
//! assert_eq!(ops.len(), 1000);
//! let reads = ops.iter().filter(|op| matches!(op, prism_types::Op::Read(_))).count();
//! // YCSB-A is a 50/50 read/update mix.
//! assert!(reads > 350 && reads < 650);
//! ```

mod dist;
mod spec;
mod stream;

pub use dist::{Distribution, KeyChooser};
pub use spec::{OpMix, Workload};
pub use stream::OpStream;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every generated operation targets a key inside the configured key
        /// space (inserts may extend it by exactly the number of inserts
        /// issued so far).
        #[test]
        fn ops_stay_in_key_space(keys in 100u64..5_000, seed in 0u64..1_000, theta in 0.4f64..1.2) {
            let workload = Workload::ycsb_d(keys).with_zipf(theta);
            let mut inserts = 0u64;
            for op in workload.stream(seed).take(2_000) {
                let id = op.key().id();
                prop_assert!(id < keys + inserts + 1, "key {id} outside space");
                if matches!(op, prism_types::Op::Insert(_, _)) {
                    inserts += 1;
                }
            }
        }

        /// The same seed always produces the same operation stream.
        #[test]
        fn streams_are_deterministic(seed in 0u64..10_000) {
            let workload = Workload::ycsb_b(1_000);
            let a: Vec<u64> = workload.stream(seed).take(500).map(|op| op.key().id()).collect();
            let b: Vec<u64> = workload.stream(seed).take(500).map(|op| op.key().id()).collect();
            prop_assert_eq!(a, b);
        }
    }
}
