//! Turning a workload specification into a stream of operations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prism_types::{Key, Op, Value};

use crate::dist::KeyChooser;
use crate::spec::Workload;

/// A deterministic, infinite stream of operations drawn from a
/// [`Workload`].
///
/// The stream also provides [`OpStream::load_ops`], the sequential insert
/// phase that populates the database before warm-up and measurement.
#[derive(Debug)]
pub struct OpStream {
    workload: Workload,
    rng: StdRng,
    read_chooser: KeyChooser,
    write_chooser: KeyChooser,
    /// Highest key id inserted so far (grows when the workload inserts).
    newest_key: u64,
}

impl OpStream {
    /// Create a stream with the given RNG seed.
    pub fn new(workload: Workload, seed: u64) -> Self {
        let read_chooser = KeyChooser::new(workload.distribution, workload.record_count);
        let write_chooser = KeyChooser::new(
            workload.write_distribution.unwrap_or(workload.distribution),
            workload.record_count,
        );
        OpStream {
            newest_key: workload.record_count.saturating_sub(1),
            rng: StdRng::seed_from_u64(seed),
            read_chooser,
            write_chooser,
            workload,
        }
    }

    /// The workload this stream draws from.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The insert operations that load the initial dataset, in key order.
    pub fn load_ops(&self) -> impl Iterator<Item = Op> + '_ {
        let size = self.workload.value_size;
        (0..self.workload.record_count)
            .map(move |id| Op::Insert(Key::from_id(id), Value::filled(size, (id % 251) as u8)))
    }

    fn value(&mut self) -> Value {
        Value::filled(self.workload.value_size, self.rng.gen())
    }

    fn next_op(&mut self) -> Op {
        let mix = self.workload.mix;
        let draw: f64 = self.rng.gen();
        let read_key = |s: &mut Self| Key::from_id(s.read_chooser.next(&mut s.rng, s.newest_key));
        let write_key = |s: &mut Self| Key::from_id(s.write_chooser.next(&mut s.rng, s.newest_key));

        if draw < mix.reads {
            Op::Read(read_key(self))
        } else if draw < mix.reads + mix.updates {
            let key = write_key(self);
            let value = self.value();
            Op::Update(key, value)
        } else if draw < mix.reads + mix.updates + mix.inserts {
            self.newest_key += 1;
            let key = Key::from_id(self.newest_key);
            let value = self.value();
            Op::Insert(key, value)
        } else if draw < mix.reads + mix.updates + mix.inserts + mix.read_modify_writes {
            let key = write_key(self);
            let value = self.value();
            Op::ReadModifyWrite(key, value)
        } else {
            let key = read_key(self);
            let len = self.rng.gen_range(1..=self.workload.max_scan_len.max(1));
            Op::Scan(key, len)
        }
    }
}

impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_types::OpKind;

    #[test]
    fn load_ops_cover_every_key_once() {
        let workload = Workload::ycsb_a(500);
        let stream = workload.stream(1);
        let ids: Vec<u64> = stream.load_ops().map(|op| op.key().id()).collect();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
        for op in stream.load_ops().take(5) {
            assert_eq!(op.kind(), OpKind::Insert);
        }
    }

    #[test]
    fn mix_fractions_are_respected() {
        let workload = Workload::ycsb_b(10_000);
        let ops: Vec<Op> = workload.stream(11).take(20_000).collect();
        let reads = ops.iter().filter(|o| o.kind() == OpKind::Read).count() as f64;
        let updates = ops.iter().filter(|o| o.kind() == OpKind::Update).count() as f64;
        assert!((reads / 20_000.0 - 0.95).abs() < 0.02);
        assert!((updates / 20_000.0 - 0.05).abs() < 0.02);
    }

    #[test]
    fn inserts_extend_the_key_space_monotonically() {
        let workload = Workload::ycsb_d(1_000);
        let mut seen_inserts = Vec::new();
        for op in workload.stream(5).take(5_000) {
            if let Op::Insert(key, _) = op {
                seen_inserts.push(key.id());
            }
        }
        assert!(!seen_inserts.is_empty());
        let mut sorted = seen_inserts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            seen_inserts.len(),
            "insert keys must be unique"
        );
        assert!(seen_inserts.iter().all(|&id| id >= 1_000));
    }

    #[test]
    fn values_have_configured_size() {
        let workload = Workload::twitter_cluster19(100);
        for op in workload.stream(2).take(500) {
            if let Op::Update(_, value) = op {
                assert_eq!(value.len(), 102);
            }
        }
    }

    #[test]
    fn rmw_ops_appear_in_ycsb_f() {
        let workload = Workload::ycsb_f(1_000);
        let rmw = workload
            .stream(9)
            .take(2_000)
            .filter(|o| o.kind() == OpKind::ReadModifyWrite)
            .count();
        assert!(rmw > 800, "expected ~50% RMW ops, got {rmw}/2000");
    }
}
