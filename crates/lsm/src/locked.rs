//! Thread-safe adapter for the LSM baseline family.
//!
//! The LSM engines model RocksDB's architecture, where client operations
//! funnel through shared structures (memtable, WAL group-commit, version
//! set); the honest way to expose them to concurrent clients is one global
//! lock. [`LockedLsmTree`] does exactly that, so scalability experiments
//! can compare PrismDB's per-partition locking against a coarse-locked
//! baseline over the *same* engines, apples-to-apples.

use prism_types::MutexKv;

use crate::LsmTree;

/// An [`LsmTree`] behind one global mutex, implementing
/// [`prism_types::ConcurrentKvStore`] with a single shard (all concurrent
/// clients serialise).
pub type LockedLsmTree = MutexKv<LsmTree>;

impl LsmTree {
    /// Wrap this engine in a global lock so it can be driven from many
    /// threads through [`prism_types::ConcurrentKvStore`].
    pub fn into_concurrent(self) -> LockedLsmTree {
        MutexKv::new(self)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use prism_types::{ConcurrentKvStore, Key, Value};

    use crate::LsmConfig;

    #[test]
    fn locked_lsm_is_driveable_from_many_threads() {
        let engine = Arc::new(
            crate::LsmTree::open(LsmConfig::het(2_000, 1.0 / 6.0))
                .unwrap()
                .into_concurrent(),
        );
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let id = t * 500 + i;
                        engine
                            .put(Key::from_id(id), Value::filled(128, t as u8))
                            .unwrap();
                        let got = engine.get(&Key::from_id(id)).unwrap();
                        assert_eq!(got.value.unwrap().as_bytes()[0], t as u8);
                    }
                });
            }
        });
        assert_eq!(engine.shard_count(), 1, "a global lock is a single shard");
        let scanned = engine.scan(&Key::min(), 1_000).unwrap();
        assert_eq!(scanned.entries.len(), 400);
        assert!(scanned.entries.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
