//! The leveled LSM-tree engine.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use prism_flash::{FileId, SstBuilder, SstEntry, SstFile};
use prism_storage::{CpuCosts, Device, TieredStorage};
use prism_types::{
    BatchOp, CompactionStats, EngineStats, Key, KvStore, Lookup, Nanos, ReadSource, Result,
    ScanResult, Value, WriteBatch,
};

use crate::cache::BlockCache;
use crate::config::{LsmConfig, Tier};
use crate::memtable::Memtable;

/// A leveled LSM-tree key-value store with per-level (or, for Mutant,
/// per-file) device placement.
///
/// See the crate documentation for the baseline presets this engine can be
/// configured as. All timing is virtual: client operations advance per-client
/// clocks, WAL appends and memtable inserts serialize on a shared clock
/// (modelling RocksDB's group-commit bottleneck), and flushes/compactions
/// advance a background completion time that produces write stalls when the
/// foreground outruns it.
pub struct LsmTree {
    config: LsmConfig,
    storage: TieredStorage,
    cpu: CpuCosts,
    memtable: Memtable,
    levels: Vec<Vec<Arc<SstFile>>>,
    file_tiers: HashMap<FileId, Tier>,
    file_temperature: HashMap<FileId, u64>,
    compaction_cursor: Vec<usize>,
    block_cache: BlockCache,
    l2_cache: Option<BlockCache>,
    next_file_id: FileId,
    next_timestamp: u64,
    // Virtual clocks.
    client_clocks: Vec<Nanos>,
    next_client: usize,
    serial_clock: Nanos,
    bg_busy_until: Nanos,
    // Statistics.
    reads_from_dram: u64,
    reads_from_nvm: u64,
    reads_from_flash: u64,
    reads_not_found: u64,
    reads_per_level: [u64; 8],
    user_bytes_written: u64,
    batch_groups: u64,
    batch_entries: u64,
    compaction: CompactionStats,
    ops_since_placement: u64,
}

impl LsmTree {
    /// Open an LSM tree with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`prism_types::PrismError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn open(config: LsmConfig) -> Result<Self> {
        config.validate()?;
        let storage = TieredStorage::new(config.nvm_profile, config.flash_profile);
        Ok(LsmTree {
            cpu: storage.cpu,
            memtable: Memtable::new(),
            levels: vec![Vec::new(); config.num_levels],
            file_tiers: HashMap::new(),
            file_temperature: HashMap::new(),
            compaction_cursor: vec![0; config.num_levels],
            block_cache: BlockCache::new(config.block_cache_bytes),
            l2_cache: if config.l2_cache_bytes > 0 {
                Some(BlockCache::new(config.l2_cache_bytes))
            } else {
                None
            },
            next_file_id: 1,
            next_timestamp: 1,
            client_clocks: vec![Nanos::ZERO; config.clients],
            next_client: 0,
            serial_clock: Nanos::ZERO,
            bg_busy_until: Nanos::ZERO,
            reads_from_dram: 0,
            reads_from_nvm: 0,
            reads_from_flash: 0,
            reads_not_found: 0,
            reads_per_level: [0; 8],
            user_bytes_written: 0,
            batch_groups: 0,
            batch_entries: 0,
            compaction: CompactionStats::default(),
            ops_since_placement: 0,
            storage,
            config,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// Blended storage cost per gigabyte of the devices in use.
    pub fn cost_per_gb(&self) -> f64 {
        self.config.cost_per_gb()
    }

    /// Number of live SST files per level.
    pub fn files_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    fn device_for(&self, tier: Tier) -> &Arc<Device> {
        match tier {
            Tier::Nvm => &self.storage.nvm,
            Tier::Flash => &self.storage.flash,
        }
    }

    fn next_ts(&mut self) -> u64 {
        let ts = self.next_timestamp;
        self.next_timestamp += 1;
        ts
    }

    fn allocate_file_id(&mut self) -> FileId {
        let id = self.next_file_id;
        self.next_file_id += 1;
        id
    }

    fn pick_client(&mut self) -> usize {
        let client = self.next_client;
        self.next_client = (self.next_client + 1) % self.client_clocks.len();
        client
    }

    fn level_target_bytes(&self, level: usize) -> u64 {
        self.config.level_base_bytes
            * self
                .config
                .level_multiplier
                .pow(level.saturating_sub(1) as u32)
    }

    fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|f| f.size_bytes()).sum()
    }

    fn charge_tier_time(&mut self, tier: Tier, cost: Nanos) {
        match tier {
            Tier::Nvm => self.compaction.fast_tier_time += cost,
            Tier::Flash => self.compaction.slow_tier_time += cost,
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    fn write_entry(&mut self, key: Key, value: Option<Value>) -> Result<Nanos> {
        let ts = self.next_ts();
        let client = self.pick_client();
        let value_bytes = value.as_ref().map(|v| v.len() as u64).unwrap_or(0);

        // Serialized section: WAL append (+ optional fsync) and memtable
        // insert protected by the writer lock.
        let wal_dev = self.device_for(self.config.wal_tier).clone();
        let mut serial =
            self.cpu.index_op + wal_dev.write_sequential(key.len() as u64 + value_bytes + 16);
        if self.config.fsync_wal {
            serial += self.config.wal_sync_cost.unwrap_or_else(|| wal_dev.sync());
        }
        let arrive = self.client_clocks[client];
        let start = arrive.max(self.serial_clock);
        self.serial_clock = start + serial;
        let mut latency = (start.saturating_sub(arrive))
            + serial
            + self.cpu.request_overhead
            + self.config.polling_overhead;

        self.memtable.insert(key.clone(), value, ts);
        self.user_bytes_written += value_bytes;
        self.block_cache.remove(&key);
        if let Some(l2) = &mut self.l2_cache {
            l2.remove(&key);
        }

        if self.memtable.size_bytes() >= self.config.memtable_bytes {
            let now = arrive + latency;
            let stall = self.bg_busy_until.saturating_sub(now);
            latency += stall;
            self.compaction.stall_time += stall;
            let mut background = self.flush()?;
            background += self.run_compactions()?;
            self.bg_busy_until = self.bg_busy_until.max(now + stall) + background;
        }

        self.client_clocks[client] = arrive + latency;
        self.maybe_run_mutant_placement();
        Ok(latency)
    }

    /// Group commit: all entries of a batch share one WAL append (and, in
    /// fsync mode, one sync), one serialised-section reservation and one
    /// request overhead — modelling RocksDB's write-group leader paying
    /// the WAL cost for its followers. Memtable semantics are identical to
    /// applying the entries front to back.
    fn write_group(&mut self, entries: Vec<BatchOp>) -> Result<Nanos> {
        if entries.is_empty() {
            return Ok(Nanos::ZERO);
        }
        let client = self.pick_client();
        let wal_dev = self.device_for(self.config.wal_tier).clone();
        let mut wal_bytes = 0u64;
        let mut serial = Nanos::ZERO;
        for entry in &entries {
            serial += self.cpu.index_op;
            let value_bytes = match entry {
                BatchOp::Put(_, value) => value.len() as u64,
                BatchOp::Delete(_) => 0,
            };
            wal_bytes += entry.key().len() as u64 + value_bytes + 16;
        }
        serial += wal_dev.write_sequential(wal_bytes);
        if self.config.fsync_wal {
            serial += self.config.wal_sync_cost.unwrap_or_else(|| wal_dev.sync());
        }
        let arrive = self.client_clocks[client];
        let start = arrive.max(self.serial_clock);
        self.serial_clock = start + serial;
        let mut latency = (start.saturating_sub(arrive))
            + serial
            + self.cpu.request_overhead
            + self.config.polling_overhead;

        self.batch_groups += 1;
        self.batch_entries += entries.len() as u64;
        for entry in entries {
            let ts = self.next_ts();
            let (key, value) = match entry {
                BatchOp::Put(key, value) => (key, Some(value)),
                BatchOp::Delete(key) => (key, None),
            };
            self.user_bytes_written += value.as_ref().map(|v| v.len() as u64).unwrap_or(0);
            self.block_cache.remove(&key);
            if let Some(l2) = &mut self.l2_cache {
                l2.remove(&key);
            }
            self.memtable.insert(key, value, ts);
        }

        if self.memtable.size_bytes() >= self.config.memtable_bytes {
            let now = arrive + latency;
            let stall = self.bg_busy_until.saturating_sub(now);
            latency += stall;
            self.compaction.stall_time += stall;
            let mut background = self.flush()?;
            background += self.run_compactions()?;
            self.bg_busy_until = self.bg_busy_until.max(now + stall) + background;
        }

        self.client_clocks[client] = arrive + latency;
        self.maybe_run_mutant_placement();
        Ok(latency)
    }

    fn build_files(
        &mut self,
        entries: &[(Key, SstEntry)],
        tier: Tier,
    ) -> (Vec<Arc<SstFile>>, Nanos) {
        let mut files = Vec::new();
        let mut cost = Nanos::ZERO;
        if entries.is_empty() {
            return (files, cost);
        }
        let device = self.device_for(tier).clone();
        let mut builder = SstBuilder::new(self.allocate_file_id());
        for (key, entry) in entries {
            builder.add(key.clone(), entry.clone());
            if builder.size_bytes() >= self.config.sst_target_bytes {
                let (file, c) = builder.finish(&device);
                cost += c;
                files.push(Arc::new(file));
                builder = SstBuilder::new(self.allocate_file_id());
            }
        }
        if !builder.is_empty() {
            let (file, c) = builder.finish(&device);
            cost += c;
            files.push(Arc::new(file));
        }
        for file in &files {
            self.file_tiers.insert(file.id(), tier);
            self.file_temperature.insert(file.id(), 0);
        }
        self.charge_tier_time(tier, cost);
        (files, cost)
    }

    fn flush(&mut self) -> Result<Nanos> {
        if self.memtable.is_empty() {
            return Ok(Nanos::ZERO);
        }
        let entries = self.memtable.drain_sorted();
        let tier = self.config.placement[0];
        let cpu = self.cpu.merge_per_object * entries.len() as u64;
        let (files, io) = self.build_files(&entries, tier);
        self.levels[0].extend(files);
        self.compaction.jobs += 1;
        let total = cpu + io;
        self.compaction.total_time += total;
        self.charge_tier_time(tier, cpu);
        Ok(total)
    }

    fn remove_files(&mut self, level: usize, ids: &[FileId]) {
        let mut removed = Vec::new();
        self.levels[level].retain(|f| {
            if ids.contains(&f.id()) {
                removed.push(f.clone());
                false
            } else {
                true
            }
        });
        for file in removed {
            let tier = self
                .file_tiers
                .remove(&file.id())
                .unwrap_or(self.config.placement[level]);
            self.device_for(tier).release(file.size_bytes());
            self.file_temperature.remove(&file.id());
        }
    }

    fn run_compactions(&mut self) -> Result<Nanos> {
        let mut total = Nanos::ZERO;
        for _ in 0..64 {
            if self.levels[0].len() > self.config.l0_file_limit {
                total += self.compact_into_next(0)?;
                continue;
            }
            let mut compacted = false;
            for level in 1..self.config.num_levels - 1 {
                if self.level_bytes(level) > self.level_target_bytes(level) {
                    total += self.compact_into_next(level)?;
                    compacted = true;
                    break;
                }
            }
            if !compacted {
                break;
            }
        }
        Ok(total)
    }

    fn compact_into_next(&mut self, level: usize) -> Result<Nanos> {
        let next = level + 1;
        let inputs: Vec<Arc<SstFile>> = if level == 0 {
            self.levels[0].clone()
        } else {
            if self.levels[level].is_empty() {
                return Ok(Nanos::ZERO);
            }
            let cursor = self.compaction_cursor[level] % self.levels[level].len();
            self.compaction_cursor[level] = self.compaction_cursor[level].wrapping_add(1);
            vec![self.levels[level][cursor].clone()]
        };
        if inputs.is_empty() {
            return Ok(Nanos::ZERO);
        }
        let min_key = inputs
            .iter()
            .map(|f| f.min_key().clone())
            .min()
            .expect("non-empty inputs");
        let max_key = inputs
            .iter()
            .map(|f| f.max_key().clone())
            .max()
            .expect("non-empty inputs");
        let overlaps: Vec<Arc<SstFile>> = self.levels[next]
            .iter()
            .filter(|f| f.overlaps(&min_key, &max_key))
            .cloned()
            .collect();

        let mut duration = Nanos::ZERO;
        // Read every participating file from its device.
        for file in overlaps.iter().chain(inputs.iter()) {
            let tier = *self
                .file_tiers
                .get(&file.id())
                .unwrap_or(&self.config.placement[level]);
            let cost = self.device_for(tier).read_sequential(file.size_bytes());
            duration += cost;
            self.charge_tier_time(tier, cost);
        }

        // Merge: oldest data first so newer entries override.
        let mut merged: BTreeMap<Key, SstEntry> = BTreeMap::new();
        for file in overlaps.iter().chain(inputs.iter()) {
            for (key, entry) in file.iter() {
                merged.insert(key.clone(), entry.clone());
            }
        }
        let is_last_level = next == self.config.num_levels - 1;
        let entries: Vec<(Key, SstEntry)> = merged
            .into_iter()
            .filter(|(_, entry)| !(is_last_level && entry.is_tombstone()))
            .collect();
        duration += self.cpu.merge_per_object * entries.len() as u64;

        // Read-aware pinning: objects that are currently hot (block-cache
        // resident) are written back to the NVM level instead of moving to
        // flash, at the cost of extra compaction output.
        let pin_back = self.config.read_aware_pinning
            && self.config.placement[level] == Tier::Nvm
            && self.config.placement[next] == Tier::Flash;
        let (pinned, moved): (Vec<_>, Vec<_>) = if pin_back {
            entries
                .into_iter()
                .partition(|(key, _)| self.block_cache.contains(key))
        } else {
            (Vec::new(), entries)
        };

        let (new_next_files, write_cost) = self.build_files(&moved, self.config.placement[next]);
        duration += write_cost;
        let (pinned_files, pin_cost) = self.build_files(&pinned, self.config.placement[level]);
        duration += pin_cost;

        let input_ids: Vec<FileId> = inputs.iter().map(|f| f.id()).collect();
        let overlap_ids: Vec<FileId> = overlaps.iter().map(|f| f.id()).collect();
        self.remove_files(level, &input_ids);
        self.remove_files(next, &overlap_ids);
        self.levels[next].extend(new_next_files);
        self.levels[next].sort_by(|a, b| a.min_key().cmp(b.min_key()));
        self.levels[level].extend(pinned_files);
        if level > 0 {
            self.levels[level].sort_by(|a, b| a.min_key().cmp(b.min_key()));
        }

        self.compaction.jobs += 1;
        self.compaction.total_time += duration;
        self.compaction.demoted_objects += moved.len() as u64;
        Ok(duration)
    }

    fn maybe_run_mutant_placement(&mut self) {
        if !self.config.mutant_placement {
            return;
        }
        self.ops_since_placement += 1;
        if self.ops_since_placement < self.config.mutant_interval_ops {
            return;
        }
        self.ops_since_placement = 0;

        // Rank every file by temperature and fill NVM with the hottest ones.
        let mut ranked: Vec<(FileId, u64, u64)> = self
            .levels
            .iter()
            .flatten()
            .map(|f| {
                (
                    f.id(),
                    *self.file_temperature.get(&f.id()).unwrap_or(&0),
                    f.size_bytes(),
                )
            })
            .collect();
        ranked.sort_by_key(|&(_, temperature, _)| std::cmp::Reverse(temperature));
        let mut nvm_budget = self.config.nvm_profile.capacity_bytes;
        let mut migration_cost = Nanos::ZERO;
        for (file_id, _, size) in ranked {
            let target = if size <= nvm_budget {
                nvm_budget -= size;
                Tier::Nvm
            } else {
                Tier::Flash
            };
            let current = *self.file_tiers.get(&file_id).unwrap_or(&Tier::Flash);
            if current != target {
                let read = self.device_for(current).read_sequential(size);
                let write = self.device_for(target).write_sequential(size);
                self.device_for(current).release(size);
                self.device_for(target).allocate(size);
                migration_cost += read + write;
                self.charge_tier_time(current, read);
                self.charge_tier_time(target, write);
                self.file_tiers.insert(file_id, target);
            }
        }
        if !migration_cost.is_zero() {
            self.compaction.jobs += 1;
            self.compaction.total_time += migration_cost;
            let now = self
                .client_clocks
                .iter()
                .copied()
                .fold(Nanos::ZERO, Nanos::max);
            self.bg_busy_until = self.bg_busy_until.max(now) + migration_cost;
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    fn search_levels(
        &mut self,
        key: &Key,
        cost: &mut Nanos,
    ) -> (Option<SstEntry>, ReadSource, usize) {
        for level in 0..self.config.num_levels {
            let candidates: Vec<Arc<SstFile>> = if level == 0 {
                self.levels[0].iter().rev().cloned().collect()
            } else {
                let files = &self.levels[level];
                let idx = files.partition_point(|f| f.max_key() < key);
                files
                    .get(idx)
                    .filter(|f| f.covers(key))
                    .cloned()
                    .into_iter()
                    .collect()
            };
            for file in candidates {
                *cost += self.cpu.bloom_probe;
                let probe = file.probe(key);
                if probe.data_block_bytes > 0 {
                    let tier = *self
                        .file_tiers
                        .get(&file.id())
                        .unwrap_or(&self.config.placement[level]);
                    *cost += self.device_for(tier).read_random(probe.data_block_bytes);
                    if probe.entry.is_some() {
                        *self.file_temperature.entry(file.id()).or_insert(0) += 1;
                        let source = match tier {
                            Tier::Nvm => ReadSource::Nvm,
                            Tier::Flash => ReadSource::Flash,
                        };
                        return (probe.entry, source, level);
                    }
                }
            }
        }
        (None, ReadSource::NotFound, 0)
    }
}

impl KvStore for LsmTree {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        self.write_entry(key, Some(value))
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        self.write_entry(key.clone(), None)
    }

    fn apply_batch(&mut self, batch: WriteBatch) -> Result<Nanos> {
        self.write_group(batch.into_entries())
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        let client = self.pick_client();
        let mut cost = self.cpu.request_overhead + self.config.polling_overhead + self.cpu.index_op;
        let mut source = ReadSource::NotFound;
        let mut value: Option<Value> = None;

        if let Some((memval, _)) = self.memtable.get(key) {
            source = if memval.is_some() {
                ReadSource::Dram
            } else {
                ReadSource::NotFound
            };
            value = memval.clone();
        } else if let Some(cached) = self.block_cache.get(key) {
            cost += self.cpu.dram_hit;
            source = ReadSource::Dram;
            value = Some(cached);
        } else if let Some(cached) = self.l2_cache.as_mut().and_then(|cache| cache.get(key)) {
            cost += self.storage.nvm.read_random(cached.len().max(1) as u64);
            source = ReadSource::Nvm;
            self.block_cache.insert(key.clone(), cached.clone());
            value = Some(cached);
        } else {
            let (entry, found_source, level) = self.search_levels(key, &mut cost);
            if let Some(entry) = entry {
                if let Some(found) = entry.value {
                    source = found_source;
                    self.reads_per_level[level.min(7)] += 1;
                    self.block_cache.insert(key.clone(), found.clone());
                    if found_source == ReadSource::Flash {
                        if let Some(l2) = &mut self.l2_cache {
                            l2.insert(key.clone(), found.clone());
                        }
                    }
                    value = Some(found);
                }
            }
        }

        match source {
            ReadSource::Dram => self.reads_from_dram += 1,
            ReadSource::Nvm => self.reads_from_nvm += 1,
            ReadSource::Flash => self.reads_from_flash += 1,
            ReadSource::NotFound => self.reads_not_found += 1,
        }
        self.client_clocks[client] += cost;
        self.maybe_run_mutant_placement();
        Ok(Lookup {
            value,
            latency: cost,
            source,
        })
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        let client = self.pick_client();
        let mut cost = self.cpu.request_overhead + self.config.polling_overhead + self.cpu.index_op;
        let budget = count.saturating_mul(3).max(count);
        let max_key = Key::from_id(u64::MAX);

        // Gather candidates from lowest precedence (deepest level) upward so
        // newer versions override older ones.
        let mut merged: BTreeMap<Key, Option<Value>> = BTreeMap::new();
        for level in (0..self.config.num_levels).rev() {
            let files: Vec<Arc<SstFile>> = self.levels[level]
                .iter()
                .filter(|f| f.max_key() >= start)
                .cloned()
                .collect();
            for file in files {
                let tier = *self
                    .file_tiers
                    .get(&file.id())
                    .unwrap_or(&self.config.placement[level]);
                let mut consumed = 0u64;
                for (key, entry) in file.range(start, &max_key).take(budget) {
                    consumed += entry.encoded_size(key) as u64;
                    merged.insert(key.clone(), entry.value.clone());
                }
                if consumed > 0 {
                    cost += self.device_for(tier).read_sequential(consumed);
                }
            }
        }
        for (key, (value, _)) in self.memtable.range_from(start).take(budget) {
            merged.insert(key.clone(), value.clone());
        }

        let entries: Vec<(Key, Value)> = merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|value| (k, value)))
            .take(count)
            .collect();
        cost += self.cpu.merge_per_object * entries.len() as u64;
        self.client_clocks[client] += cost;
        Ok(ScanResult {
            entries,
            latency: cost,
        })
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            reads_from_dram: self.reads_from_dram,
            reads_from_nvm: self.reads_from_nvm,
            reads_from_flash: self.reads_from_flash,
            reads_not_found: self.reads_not_found,
            nvm_io: self.storage.nvm_io(),
            flash_io: self.storage.flash_io(),
            compaction: self.compaction,
            user_bytes_written: self.user_bytes_written,
            batch_groups: self.batch_groups,
            batch_entries: self.batch_entries,
            batch_merged_writes: 0,
            reads_per_level: self.reads_per_level,
            ..EngineStats::default()
        }
    }

    fn elapsed(&self) -> Nanos {
        let client_max = self
            .client_clocks
            .iter()
            .copied()
            .fold(Nanos::ZERO, Nanos::max);
        client_max.max(self.serial_clock).max(self.bg_busy_until)
    }

    fn engine_name(&self) -> &str {
        &self.config.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_storage::DeviceProfile;

    fn small_het(keys: u64) -> LsmTree {
        let mut config = LsmConfig::het(keys, 0.2);
        config.memtable_bytes = 32 * 1024;
        config.sst_target_bytes = 16 * 1024;
        LsmTree::open(config).unwrap()
    }

    #[test]
    fn put_get_roundtrip_through_memtable_and_levels() {
        let mut db = small_het(2_000);
        for id in 0..2_000u64 {
            db.put(Key::from_id(id), Value::filled(500, (id % 200) as u8))
                .unwrap();
        }
        // Data must have been flushed into SST files.
        assert!(db.files_per_level().iter().sum::<usize>() > 0);
        for id in (0..2_000u64).step_by(37) {
            let got = db.get(&Key::from_id(id)).unwrap();
            assert!(got.value.is_some(), "key {id} missing");
        }
        assert!(db.get(&Key::from_id(99_999)).unwrap().value.is_none());
    }

    #[test]
    fn updates_and_deletes_take_precedence_over_older_levels() {
        let mut db = small_het(1_000);
        for id in 0..1_000u64 {
            db.put(Key::from_id(id), Value::filled(400, 1)).unwrap();
        }
        db.put(Key::from_id(5), Value::filled(400, 99)).unwrap();
        db.delete(&Key::from_id(6)).unwrap();
        // Push the new versions down through flushes.
        for id in 1_000..2_000u64 {
            db.put(Key::from_id(id), Value::filled(400, 1)).unwrap();
        }
        assert_eq!(
            db.get(&Key::from_id(5)).unwrap().value.unwrap().as_bytes()[0],
            99
        );
        assert!(db.get(&Key::from_id(6)).unwrap().value.is_none());
    }

    #[test]
    fn compactions_move_data_to_flash_in_het_config() {
        let mut db = small_het(4_000);
        for id in 0..4_000u64 {
            db.put(Key::from_id(id), Value::filled(900, 1)).unwrap();
        }
        let stats = db.stats();
        assert!(stats.compaction.jobs > 0);
        assert!(
            stats.flash_io.bytes_written > 0,
            "bottom level lives on flash so compactions must write flash"
        );
        assert!(stats.flash_write_amplification() > 0.0);
        assert!(db.elapsed() > Nanos::ZERO);
    }

    #[test]
    fn single_tier_configs_only_touch_their_device() {
        let mut nvm_db = {
            let mut c = LsmConfig::single_tier(1_000, DeviceProfile::optane_nvm(1));
            c.memtable_bytes = 16 * 1024;
            LsmTree::open(c).unwrap()
        };
        for id in 0..1_000u64 {
            nvm_db.put(Key::from_id(id), Value::filled(500, 1)).unwrap();
        }
        let stats = nvm_db.stats();
        assert!(stats.nvm_io.bytes_written > 0);
        assert_eq!(stats.flash_io.bytes_written, 0);

        let mut qlc_db = {
            let mut c = LsmConfig::single_tier(1_000, DeviceProfile::qlc_flash(1));
            c.memtable_bytes = 16 * 1024;
            LsmTree::open(c).unwrap()
        };
        for id in 0..1_000u64 {
            qlc_db.put(Key::from_id(id), Value::filled(500, 1)).unwrap();
        }
        let stats = qlc_db.stats();
        assert_eq!(stats.nvm_io.bytes_written, 0);
        assert!(stats.flash_io.bytes_written > 0);
        // Same work, slower device: QLC takes longer.
        assert!(qlc_db.elapsed() > nvm_db.elapsed());
    }

    #[test]
    fn fsync_wal_slows_writes_down() {
        let mk = |fsync: bool| {
            let mut c = LsmConfig::het(1_000, 0.2).with_fsync(fsync);
            c.memtable_bytes = 64 * 1024;
            LsmTree::open(c).unwrap()
        };
        let mut with_fsync = mk(true);
        let mut without = mk(false);
        for id in 0..500u64 {
            with_fsync
                .put(Key::from_id(id), Value::filled(300, 1))
                .unwrap();
            without
                .put(Key::from_id(id), Value::filled(300, 1))
                .unwrap();
        }
        assert!(with_fsync.elapsed() > without.elapsed());
    }

    #[test]
    fn block_cache_serves_repeated_reads_from_dram() {
        let mut db = small_het(2_000);
        for id in 0..2_000u64 {
            db.put(Key::from_id(id), Value::filled(500, 1)).unwrap();
        }
        let first = db.get(&Key::from_id(1500)).unwrap();
        let second = db.get(&Key::from_id(1500)).unwrap();
        assert!(second.latency <= first.latency);
        assert_eq!(second.source, ReadSource::Dram);
    }

    #[test]
    fn l2_cache_variant_uses_nvm_for_repeated_flash_reads() {
        let mut config = LsmConfig::l2_cache(2_000, 0.2);
        config.memtable_bytes = 32 * 1024;
        config.sst_target_bytes = 16 * 1024;
        config.block_cache_bytes = 4 * 1024; // tiny DRAM cache to force L2 hits
        let mut db = LsmTree::open(config).unwrap();
        for id in 0..2_000u64 {
            db.put(Key::from_id(id), Value::filled(800, 1)).unwrap();
        }
        // Read a spread of keys twice: the second pass should hit the NVM L2
        // cache for keys the small DRAM cache already evicted.
        for _ in 0..2 {
            for id in (0..2_000u64).step_by(10) {
                db.get(&Key::from_id(id)).unwrap();
            }
        }
        assert!(
            db.stats().reads_from_nvm > 0,
            "L2 cache never served a read"
        );
    }

    #[test]
    fn mutant_placement_moves_hot_files_to_nvm() {
        let mut config = LsmConfig::mutant(2_000, 0.3);
        config.memtable_bytes = 32 * 1024;
        config.sst_target_bytes = 16 * 1024;
        config.mutant_interval_ops = 500;
        let mut db = LsmTree::open(config).unwrap();
        for id in 0..2_000u64 {
            db.put(Key::from_id(id), Value::filled(800, 1)).unwrap();
        }
        // Hammer a narrow key range so its files heat up.
        for _ in 0..2_000 {
            for id in 0..20u64 {
                db.get(&Key::from_id(id)).unwrap();
            }
        }
        let nvm_files = db.file_tiers.values().filter(|t| **t == Tier::Nvm).count();
        assert!(nvm_files > 0, "mutant never promoted a file to NVM");
    }

    #[test]
    fn scan_merges_levels_and_memtable() {
        let mut db = small_het(2_000);
        for id in 0..2_000u64 {
            db.put(Key::from_id(id), Value::filled(300, 1)).unwrap();
        }
        db.put(Key::from_id(150), Value::filled(300, 77)).unwrap();
        let result = db.scan(&Key::from_id(100), 100).unwrap();
        assert_eq!(result.entries.len(), 100);
        let ids: Vec<u64> = result.entries.iter().map(|(k, _)| k.id()).collect();
        assert_eq!(ids, (100..200).collect::<Vec<_>>());
        let updated = result.entries.iter().find(|(k, _)| k.id() == 150).unwrap();
        assert_eq!(updated.1.as_bytes()[0], 77);
    }

    #[test]
    fn read_aware_variant_does_more_compaction_work() {
        let run = |read_aware: bool| {
            let mut config = if read_aware {
                LsmConfig::read_aware(3_000, 0.2)
            } else {
                LsmConfig::het(3_000, 0.2)
            };
            config.memtable_bytes = 32 * 1024;
            config.sst_target_bytes = 16 * 1024;
            let mut db = LsmTree::open(config).unwrap();
            for id in 0..3_000u64 {
                db.put(Key::from_id(id), Value::filled(700, 1)).unwrap();
            }
            // Interleave reads (heating the cache) with more writes.
            for round in 0..3u64 {
                for id in 0..200u64 {
                    db.get(&Key::from_id(id)).unwrap();
                }
                for id in 0..1_500u64 {
                    db.put(Key::from_id(id), Value::filled(700, round as u8))
                        .unwrap();
                }
            }
            db.stats().compaction.total_time
        };
        let plain = run(false);
        let read_aware = run(true);
        assert!(
            read_aware >= plain,
            "read-aware pinning should not reduce compaction work (ra {read_aware}, plain {plain})"
        );
    }
}
