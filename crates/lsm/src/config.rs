//! LSM engine configuration and the baseline presets.

use prism_storage::DeviceProfile;
use prism_types::{Nanos, PrismError, Result};

/// Which storage tier a level, file or WAL lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The fast NVM device.
    Nvm,
    /// The slow flash device (TLC or QLC).
    Flash,
}

/// Configuration of an [`crate::LsmTree`].
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Engine name reported in experiment tables.
    pub name: String,
    /// Expected number of distinct keys (used only to scale defaults).
    pub expected_keys: u64,
    /// Memtable size that triggers a flush.
    pub memtable_bytes: u64,
    /// Number of L0 files that triggers an L0→L1 compaction.
    pub l0_file_limit: usize,
    /// Size target of L1; level `i` targets `level_base_bytes *
    /// level_multiplier^(i-1)`.
    pub level_base_bytes: u64,
    /// Growth factor between levels.
    pub level_multiplier: u64,
    /// Number of levels (including L0).
    pub num_levels: usize,
    /// Device placement per level (`placement.len() == num_levels`).
    pub placement: Vec<Tier>,
    /// Target size of SST files written by flushes and compactions.
    pub sst_target_bytes: u64,
    /// DRAM block-cache capacity in bytes.
    pub block_cache_bytes: u64,
    /// NVM second-level cache capacity (0 disables it; used by the
    /// `rocksdb-l2c` baseline).
    pub l2_cache_bytes: u64,
    /// Which tier the write-ahead log lives on.
    pub wal_tier: Tier,
    /// Whether every write synchronously flushes the WAL.
    pub fsync_wal: bool,
    /// Override for the WAL sync cost (SpanDB's SPDK logging bypasses the
    /// kernel and costs far less than a regular fsync).
    pub wal_sync_cost: Option<Nanos>,
    /// Extra per-operation CPU for engines that busy-poll on I/O (SpanDB).
    pub polling_overhead: Nanos,
    /// Retain block-cache-hot objects on the NVM level during compactions
    /// into flash (the paper's read-aware RocksDB prototype).
    pub read_aware_pinning: bool,
    /// Place whole SST files on NVM or flash by access temperature instead
    /// of by level (Mutant).
    pub mutant_placement: bool,
    /// Operations between Mutant placement re-evaluations.
    pub mutant_interval_ops: u64,
    /// Number of concurrent client threads the paper's testbed uses (8).
    pub clients: usize,
    /// NVM device profile.
    pub nvm_profile: DeviceProfile,
    /// Flash device profile.
    pub flash_profile: DeviceProfile,
}

impl LsmConfig {
    fn scaled_base(name: &str, expected_keys: u64) -> Self {
        let logical = expected_keys.max(1) * 1024;
        let flash_capacity = logical * 3;
        let nvm_capacity = (flash_capacity / 5).max(64 * 1024);
        let memtable = (logical / 64).clamp(64 * 1024, 64 << 20);
        LsmConfig {
            name: name.to_string(),
            expected_keys,
            memtable_bytes: memtable,
            l0_file_limit: 4,
            level_base_bytes: memtable * 4,
            level_multiplier: 10,
            num_levels: 5,
            placement: vec![Tier::Flash; 5],
            sst_target_bytes: (memtable / 4).max(32 * 1024),
            // The paper provisions DRAM at 1:10 of storage capacity and
            // dedicates 20% of DRAM to the block cache.
            block_cache_bytes: flash_capacity / 10 / 5,
            l2_cache_bytes: 0,
            wal_tier: Tier::Flash,
            fsync_wal: false,
            wal_sync_cost: None,
            polling_overhead: Nanos::ZERO,
            read_aware_pinning: false,
            mutant_placement: false,
            mutant_interval_ops: 5_000,
            clients: 8,
            nvm_profile: DeviceProfile::optane_nvm(nvm_capacity),
            flash_profile: DeviceProfile::qlc_flash(flash_capacity),
        }
    }

    /// RocksDB on a single storage device: every level (and the WAL) lives
    /// on `profile`.
    pub fn single_tier(expected_keys: u64, profile: DeviceProfile) -> Self {
        let logical = expected_keys.max(1) * 1024;
        let mut config =
            Self::scaled_base(&format!("rocksdb-{}", profile.kind.label()), expected_keys);
        let tier = match profile.kind {
            prism_storage::DeviceKind::Nvm | prism_storage::DeviceKind::Dram => Tier::Nvm,
            _ => Tier::Flash,
        };
        config.placement = vec![tier; config.num_levels];
        config.wal_tier = tier;
        match tier {
            Tier::Nvm => {
                config.nvm_profile = profile;
                config.nvm_profile.capacity_bytes = logical * 3;
                config.flash_profile.capacity_bytes = 1;
            }
            Tier::Flash => {
                config.flash_profile = profile;
                config.flash_profile.capacity_bytes = logical * 3;
                config.nvm_profile.capacity_bytes = 1;
            }
        }
        config
    }

    /// Multi-tier RocksDB ("het"): the top levels live on NVM sized to
    /// `nvm_fraction` of total capacity, the bottom level on QLC flash.
    /// This mirrors the paper's L0–L3 on NVM, L4 on QLC split.
    pub fn het(expected_keys: u64, nvm_fraction: f64) -> Self {
        let mut config = Self::scaled_base("rocksdb-het", expected_keys);
        let total = config.flash_profile.capacity_bytes + config.nvm_profile.capacity_bytes;
        let nvm_capacity = ((total as f64 * nvm_fraction) as u64).max(64 * 1024);
        config.nvm_profile.capacity_bytes = nvm_capacity;
        config.flash_profile.capacity_bytes = total - nvm_capacity;
        let mut placement = vec![Tier::Nvm; config.num_levels];
        placement[config.num_levels - 1] = Tier::Flash;
        config.placement = placement;
        config.wal_tier = Tier::Nvm;
        // Size the NVM-resident levels (L1..Ln-1) so together they fill at
        // most ~90 % of the NVM device; everything beyond that spills to the
        // flash-resident bottom level, mirroring the paper's ~89 % on QLC.
        let nvm_levels = config.num_levels.saturating_sub(2).max(1) as u32;
        let geometric_sum: u64 = (0..nvm_levels)
            .map(|i| config.level_multiplier.pow(i))
            .sum();
        config.level_base_bytes =
            ((nvm_capacity as f64 * 0.9) as u64 / geometric_sum.max(1)).max(16 * 1024);
        config
    }

    /// RocksDB with NVM as a second-level read cache (`rocksdb-l2c`): all
    /// levels and the WAL live on flash; the NVM capacity only caches
    /// blocks for reads.
    pub fn l2_cache(expected_keys: u64, nvm_fraction: f64) -> Self {
        let mut config = Self::het(expected_keys, nvm_fraction);
        config.name = "rocksdb-l2c".to_string();
        config.placement = vec![Tier::Flash; config.num_levels];
        config.wal_tier = Tier::Flash;
        config.l2_cache_bytes = config.nvm_profile.capacity_bytes;
        config
    }

    /// The paper's read-aware RocksDB prototype (`rocksdb-RA`): the het
    /// layout plus pinned compactions that keep hot objects on the NVM
    /// levels at the cost of extra compaction work.
    pub fn read_aware(expected_keys: u64, nvm_fraction: f64) -> Self {
        let mut config = Self::het(expected_keys, nvm_fraction);
        config.name = "rocksdb-ra".to_string();
        config.read_aware_pinning = true;
        config
    }

    /// Mutant: SST files are placed on NVM or flash according to their
    /// access temperature, at file granularity.
    pub fn mutant(expected_keys: u64, nvm_fraction: f64) -> Self {
        let mut config = Self::het(expected_keys, nvm_fraction);
        config.name = "mutant".to_string();
        config.placement = vec![Tier::Flash; config.num_levels];
        config.mutant_placement = true;
        config
    }

    /// SpanDB: het placement plus an NVM WAL written through an SPDK-style
    /// path (cheap syncs) and CPU spent busy-polling for I/O completions.
    pub fn spandb(expected_keys: u64, nvm_fraction: f64) -> Self {
        let mut config = Self::het(expected_keys, nvm_fraction);
        config.name = "spandb".to_string();
        config.wal_tier = Tier::Nvm;
        config.fsync_wal = true;
        config.wal_sync_cost = Some(Nanos::from_micros(3));
        config.polling_overhead = Nanos::from_nanos(500);
        config
    }

    /// Enable or disable synchronous WAL flushes (Figure 13).
    pub fn with_fsync(mut self, enabled: bool) -> Self {
        self.fsync_wal = enabled;
        self
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] describing the problem.
    pub fn validate(&self) -> Result<()> {
        if self.num_levels < 2 {
            return Err(PrismError::InvalidConfig(
                "an LSM tree needs at least two levels".into(),
            ));
        }
        if self.placement.len() != self.num_levels {
            return Err(PrismError::InvalidConfig(format!(
                "placement has {} entries for {} levels",
                self.placement.len(),
                self.num_levels
            )));
        }
        if self.memtable_bytes == 0 || self.sst_target_bytes == 0 {
            return Err(PrismError::InvalidConfig(
                "memtable and SST sizes must be non-zero".into(),
            ));
        }
        if self.l0_file_limit == 0 || self.level_multiplier < 2 {
            return Err(PrismError::InvalidConfig(
                "l0_file_limit must be >= 1 and level_multiplier >= 2".into(),
            ));
        }
        if self.clients == 0 {
            return Err(PrismError::InvalidConfig(
                "at least one client is required".into(),
            ));
        }
        Ok(())
    }

    /// Blended storage cost per gigabyte of the devices this configuration
    /// actually uses.
    pub fn cost_per_gb(&self) -> f64 {
        let uses_nvm = self.placement.contains(&Tier::Nvm)
            || self.wal_tier == Tier::Nvm
            || self.l2_cache_bytes > 0
            || self.mutant_placement;
        let uses_flash = self.placement.contains(&Tier::Flash) || self.mutant_placement;
        let mut devices = Vec::new();
        if uses_nvm {
            devices.push((&self.nvm_profile, self.nvm_profile.capacity_bytes));
        }
        if uses_flash {
            devices.push((&self.flash_profile, self.flash_profile.capacity_bytes));
        }
        prism_storage::blended_cost_per_gb(&devices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_storage::DeviceKind;

    #[test]
    fn het_places_top_levels_on_nvm() {
        let config = LsmConfig::het(10_000, 0.2);
        config.validate().unwrap();
        assert_eq!(config.placement[0], Tier::Nvm);
        assert_eq!(config.placement[config.num_levels - 1], Tier::Flash);
        assert_eq!(config.wal_tier, Tier::Nvm);
        assert!(config.nvm_profile.capacity_bytes < config.flash_profile.capacity_bytes);
    }

    #[test]
    fn single_tier_uses_one_device() {
        let nvm = LsmConfig::single_tier(1_000, DeviceProfile::optane_nvm(1));
        assert!(nvm.placement.iter().all(|t| *t == Tier::Nvm));
        assert_eq!(nvm.name, "rocksdb-nvm");
        let qlc = LsmConfig::single_tier(1_000, DeviceProfile::qlc_flash(1));
        assert!(qlc.placement.iter().all(|t| *t == Tier::Flash));
        assert!(qlc.cost_per_gb() < nvm.cost_per_gb());
        let tlc = LsmConfig::single_tier(1_000, DeviceProfile::tlc_flash(1));
        assert_eq!(tlc.flash_profile.kind, DeviceKind::TlcNand);
    }

    #[test]
    fn variant_presets_set_their_distinguishing_features() {
        let l2c = LsmConfig::l2_cache(1_000, 0.2);
        assert!(l2c.l2_cache_bytes > 0);
        assert!(l2c.placement.iter().all(|t| *t == Tier::Flash));
        let ra = LsmConfig::read_aware(1_000, 0.2);
        assert!(ra.read_aware_pinning);
        let mutant = LsmConfig::mutant(1_000, 0.2);
        assert!(mutant.mutant_placement);
        let spandb = LsmConfig::spandb(1_000, 0.2);
        assert!(spandb.fsync_wal);
        assert_eq!(spandb.wal_tier, Tier::Nvm);
        assert!(spandb.wal_sync_cost.unwrap() < Nanos::from_micros(10));
        assert!(spandb.polling_overhead > Nanos::ZERO);
    }

    #[test]
    fn het_cost_sits_between_single_tiers() {
        let qlc = LsmConfig::single_tier(1_000, DeviceProfile::qlc_flash(1)).cost_per_gb();
        let nvm = LsmConfig::single_tier(1_000, DeviceProfile::optane_nvm(1)).cost_per_gb();
        let het = LsmConfig::het(1_000, 0.2).cost_per_gb();
        assert!(het > qlc && het < nvm);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut bad = LsmConfig::het(100, 0.2);
        bad.placement.pop();
        assert!(bad.validate().is_err());
        let mut bad = LsmConfig::het(100, 0.2);
        bad.memtable_bytes = 0;
        assert!(bad.validate().is_err());
        let mut bad = LsmConfig::het(100, 0.2);
        bad.clients = 0;
        assert!(bad.validate().is_err());
        let mut bad = LsmConfig::het(100, 0.2);
        bad.num_levels = 1;
        bad.placement = vec![Tier::Nvm];
        assert!(bad.validate().is_err());
    }
}
