//! The leveled LSM-tree baseline family.
//!
//! The paper compares PrismDB against RocksDB and several systems built on
//! top of RocksDB-style LSM trees. This crate implements a from-scratch
//! leveled LSM engine — memtable, WAL, L0 plus leveled SST files (reusing
//! the SST format from `prism-flash`), bloom filters, a DRAM block cache,
//! leveled compaction and per-level device placement — plus configuration
//! presets reproducing each baseline used in the evaluation:
//!
//! | Preset | Paper baseline |
//! |---|---|
//! | [`LsmConfig::single_tier`] | RocksDB on a single device (NVM / TLC / QLC) |
//! | [`LsmConfig::het`] | Multi-tier RocksDB: upper levels on NVM, bottom level on flash |
//! | [`LsmConfig::l2_cache`] | `rocksdb-l2c`: all levels on flash, NVM as a second-level read cache |
//! | [`LsmConfig::read_aware`] | `rocksdb-RA`: pinned compactions that retain hot objects on NVM levels |
//! | [`LsmConfig::mutant`] | Mutant: per-SST-file placement by file access temperature |
//! | [`LsmConfig::spandb`] | SpanDB: NVM WAL with SPDK-style logging and top levels on NVM |
//!
//! All presets implement [`prism_types::KvStore`], so the benchmark harness
//! drives them exactly like PrismDB.
//!
//! # Example
//!
//! ```
//! use prism_lsm::{LsmConfig, LsmTree};
//! use prism_types::{Key, KvStore, Value};
//!
//! let mut db = LsmTree::open(LsmConfig::het(10_000, 0.2)).unwrap();
//! db.put(Key::from_id(1), Value::filled(256, 7)).unwrap();
//! assert!(db.get(&Key::from_id(1)).unwrap().value.is_some());
//! ```

mod cache;
mod config;
mod engine;
mod locked;
mod memtable;

pub use cache::BlockCache;
pub use config::{LsmConfig, Tier};
pub use engine::LsmTree;
pub use locked::LockedLsmTree;

#[cfg(test)]
mod proptests {
    use super::*;
    use prism_types::{Key, KvStore, Value};
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The LSM engine behaves like a plain map under arbitrary puts,
        /// deletes and gets, across flushes and compactions.
        #[test]
        fn lsm_matches_model(
            ops in prop::collection::vec((0u8..3, 0u64..200, 1usize..900), 1..300)
        ) {
            let mut config = LsmConfig::het(200, 0.2);
            config.memtable_bytes = 16 * 1024;
            config.sst_target_bytes = 16 * 1024;
            let mut db = LsmTree::open(config).unwrap();
            let mut model: HashMap<u64, usize> = HashMap::new();
            for (op, id, size) in ops {
                let key = Key::from_id(id);
                match op {
                    0 => {
                        db.put(key, Value::filled(size, id as u8)).unwrap();
                        model.insert(id, size);
                    }
                    1 => {
                        db.delete(&key).unwrap();
                        model.remove(&id);
                    }
                    _ => {
                        let got = db.get(&key).unwrap();
                        match model.get(&id) {
                            Some(expected) => {
                                prop_assert_eq!(got.value.expect("key must exist").len(), *expected);
                            }
                            None => prop_assert!(got.value.is_none()),
                        }
                    }
                }
            }
            for (id, size) in &model {
                let got = db.get(&Key::from_id(*id)).unwrap();
                prop_assert_eq!(got.value.expect("key must exist").len(), *size);
            }
        }
    }
}
