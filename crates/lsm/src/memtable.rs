//! The in-memory write buffer.

use std::collections::BTreeMap;

use prism_flash::SstEntry;
use prism_types::{Key, Value};

/// A sorted in-memory write buffer, flushed to an L0 SST file when it
/// exceeds the configured size.
#[derive(Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Key, (Option<Value>, u64)>,
    bytes: u64,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Insert a value (or a tombstone when `value` is `None`).
    pub fn insert(&mut self, key: Key, value: Option<Value>, timestamp: u64) {
        let added = key.len() as u64 + value.as_ref().map(|v| v.len() as u64).unwrap_or(0) + 16;
        if let Some((old, _)) = self.map.insert(key, (value, timestamp)) {
            self.bytes = self
                .bytes
                .saturating_sub(old.map(|v| v.len() as u64).unwrap_or(0));
        }
        self.bytes += added;
    }

    /// Look up a key. `Some(None)` means the key has a tombstone.
    pub fn get(&self, key: &Key) -> Option<&(Option<Value>, u64)> {
        self.map.get(key)
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over entries with keys `>= start`, ascending.
    pub fn range_from<'a>(
        &'a self,
        start: &Key,
    ) -> impl Iterator<Item = (&'a Key, &'a (Option<Value>, u64))> {
        self.map.range(start.clone()..)
    }

    /// Drain all entries as SST entries, in key order, emptying the
    /// memtable.
    pub fn drain_sorted(&mut self) -> Vec<(Key, SstEntry)> {
        let map = std::mem::take(&mut self.map);
        self.bytes = 0;
        map.into_iter()
            .map(|(key, (value, ts))| {
                let entry = match value {
                    Some(v) => SstEntry::value(v, ts),
                    None => SstEntry::tombstone(ts),
                };
                (key, entry)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_size_tracking() {
        let mut m = Memtable::new();
        m.insert(Key::from_id(1), Some(Value::filled(100, 1)), 1);
        m.insert(Key::from_id(2), None, 2);
        assert_eq!(m.len(), 2);
        assert!(m.size_bytes() > 100);
        assert!(m.get(&Key::from_id(1)).unwrap().0.is_some());
        assert!(m.get(&Key::from_id(2)).unwrap().0.is_none());
        assert!(m.get(&Key::from_id(3)).is_none());
    }

    #[test]
    fn overwrites_do_not_double_count_bytes() {
        let mut m = Memtable::new();
        m.insert(Key::from_id(1), Some(Value::filled(1000, 1)), 1);
        let after_first = m.size_bytes();
        m.insert(Key::from_id(1), Some(Value::filled(1000, 2)), 2);
        // Overhead is counted again but the old payload is released.
        assert!(m.size_bytes() < after_first + 100);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn drain_returns_sorted_entries_and_empties() {
        let mut m = Memtable::new();
        for id in [5u64, 1, 9, 3] {
            m.insert(Key::from_id(id), Some(Value::filled(10, id as u8)), id);
        }
        m.insert(Key::from_id(9), None, 10);
        let drained = m.drain_sorted();
        assert!(m.is_empty());
        assert_eq!(m.size_bytes(), 0);
        let ids: Vec<u64> = drained.iter().map(|(k, _)| k.id()).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
        assert!(drained.last().unwrap().1.is_tombstone());
    }

    #[test]
    fn range_from_iterates_suffix() {
        let mut m = Memtable::new();
        for id in 0..10u64 {
            m.insert(Key::from_id(id), Some(Value::filled(4, 0)), id);
        }
        let ids: Vec<u64> = m
            .range_from(&Key::from_id(7))
            .map(|(k, _)| k.id())
            .collect();
        assert_eq!(ids, vec![7, 8, 9]);
    }
}
