//! A byte-bounded LRU cache used for the DRAM block cache and the optional
//! NVM second-level cache.

use std::collections::{BTreeMap, HashMap};

use prism_types::{Key, Value};

/// Byte-bounded least-recently-used cache of objects, standing in for
/// RocksDB's block cache at object granularity.
#[derive(Debug)]
pub struct BlockCache {
    capacity_bytes: u64,
    used_bytes: u64,
    tick: u64,
    entries: HashMap<Key, (Value, u64)>,
    order: BTreeMap<u64, Key>,
}

impl BlockCache {
    /// Create a cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        BlockCache {
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a key, refreshing its recency.
    pub fn get(&mut self, key: &Key) -> Option<Value> {
        self.tick += 1;
        let tick = self.tick;
        let (value, last) = self.entries.get_mut(key)?;
        self.order.remove(last);
        *last = tick;
        self.order.insert(tick, key.clone());
        Some(value.clone())
    }

    /// True if the key is currently cached (without refreshing recency).
    pub fn contains(&self, key: &Key) -> bool {
        self.entries.contains_key(key)
    }

    /// Insert or refresh a key.
    pub fn insert(&mut self, key: Key, value: Value) {
        let size = value.len() as u64;
        if self.capacity_bytes == 0 || size > self.capacity_bytes {
            return;
        }
        self.remove(&key);
        while self.used_bytes + size > self.capacity_bytes {
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            let victim = self.order.remove(&oldest).expect("tick present");
            if let Some((old, _)) = self.entries.remove(&victim) {
                self.used_bytes -= old.len() as u64;
            }
        }
        self.tick += 1;
        self.used_bytes += size;
        self.order.insert(self.tick, key.clone());
        self.entries.insert(key, (value, self.tick));
    }

    /// Remove a key (called on writes to keep the cache coherent).
    pub fn remove(&mut self, key: &Key) {
        if let Some((value, tick)) = self.entries.remove(key) {
            self.order.remove(&tick);
            self.used_bytes -= value.len() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut cache = BlockCache::new(300);
        cache.insert(Key::from_id(1), Value::filled(100, 1));
        cache.insert(Key::from_id(2), Value::filled(100, 2));
        cache.insert(Key::from_id(3), Value::filled(100, 3));
        cache.get(&Key::from_id(1));
        cache.insert(Key::from_id(4), Value::filled(100, 4));
        assert!(!cache.contains(&Key::from_id(2)));
        assert!(cache.contains(&Key::from_id(1)));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn remove_and_zero_capacity() {
        let mut cache = BlockCache::new(1000);
        cache.insert(Key::from_id(1), Value::filled(10, 0));
        cache.remove(&Key::from_id(1));
        assert!(cache.is_empty());
        let mut off = BlockCache::new(0);
        off.insert(Key::from_id(1), Value::filled(10, 0));
        assert!(off.is_empty());
    }
}
