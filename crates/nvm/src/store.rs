//! The per-partition collection of slab files.

use std::sync::Arc;

use prism_storage::{Device, FaultOp, FaultPlan, FaultTier, InjectedFault};
use prism_types::{Key, Nanos, PrismError, Result, Value};

use crate::slab::{SlabFile, SlotEntry};
use crate::NvmAddress;

/// Maximum object size PrismDB supports (one atomically-written 4 KB page,
/// §6 of the paper).
pub const MAX_OBJECT_SIZE: usize = 4096;

/// Configuration of a [`SlabStore`].
#[derive(Debug, Clone)]
pub struct SlabConfig {
    /// Slot sizes of the slab files, ascending. An object is placed in the
    /// smallest slab whose slot size fits it.
    pub slot_sizes: Vec<u32>,
    /// NVM capacity (bytes) this store may consume.
    pub capacity_bytes: u64,
}

impl SlabConfig {
    /// The paper's small-object configuration: size classes from 128 B up
    /// to the 4 KB maximum, roughly doubling (100 B, 200 B, ... 1 KB in the
    /// paper; powers of two here).
    pub fn small_objects(capacity_bytes: u64) -> Self {
        SlabConfig {
            slot_sizes: vec![128, 256, 512, 1024, 2048, 4096],
            capacity_bytes,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.slot_sizes.is_empty() {
            return Err(PrismError::InvalidConfig(
                "slab store needs at least one slot size".into(),
            ));
        }
        if self.slot_sizes.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PrismError::InvalidConfig(
                "slab slot sizes must be strictly ascending".into(),
            ));
        }
        if self.slot_sizes.len() > u8::MAX as usize {
            return Err(PrismError::InvalidConfig(
                "at most 255 slab size classes are supported".into(),
            ));
        }
        if self.capacity_bytes == 0 {
            return Err(PrismError::InvalidConfig(
                "slab store capacity must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

/// A snapshot of slab-store space usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabUsage {
    /// Bytes consumed by allocated slots (live + reusable free slots).
    pub used_bytes: u64,
    /// Bytes consumed by live slots only (what the watermark logic cares
    /// about, since freed slots are immediately reusable).
    pub live_bytes: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of live objects.
    pub live_objects: usize,
}

impl SlabUsage {
    /// Live data as a fraction of configured capacity. This is the quantity
    /// compared against the high/low watermarks (98 %/95 % in the paper).
    pub fn utilization(&self) -> f64 {
        self.live_bytes as f64 / self.capacity_bytes.max(1) as f64
    }

    /// Allocated slots (live + free) as a fraction of configured capacity.
    pub fn allocated_utilization(&self) -> f64 {
        self.used_bytes as f64 / self.capacity_bytes.max(1) as f64
    }
}

/// The NVM object store of one partition: a set of slab files plus capacity
/// accounting against the shared NVM device.
#[derive(Debug)]
pub struct SlabStore {
    slabs: Vec<SlabFile>,
    device: Arc<Device>,
    capacity_bytes: u64,
    used_bytes: u64,
    live_slot_bytes: u64,
    live_objects: usize,
    fault: Option<Arc<FaultPlan>>,
    partition: usize,
}

impl SlabStore {
    /// Create a slab store.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the configuration is
    /// malformed (empty or non-ascending size classes, zero capacity).
    pub fn new(config: SlabConfig, device: Arc<Device>) -> Result<Self> {
        config.validate()?;
        let slabs = config
            .slot_sizes
            .iter()
            .map(|&s| SlabFile::new(s))
            .collect();
        Ok(SlabStore {
            slabs,
            device,
            capacity_bytes: config.capacity_bytes,
            used_bytes: 0,
            live_slot_bytes: 0,
            live_objects: 0,
            fault: None,
            partition: 0,
        })
    }

    /// Attach a fault-injection plan: writes may be corrupted or fail, and
    /// reads may fail, per the plan's rates and armed one-shot faults.
    /// `partition` gives the plan (and corruption errors) their context.
    pub fn attach_faults(&mut self, plan: Arc<FaultPlan>, partition: usize) {
        self.fault = Some(plan);
        self.partition = partition;
    }

    /// Roll the attached plan for one slab op; returns any extra latency.
    ///
    /// Write-path corruption (bit flip / torn write) is applied to `entry`
    /// *after* its checksum was computed, so the damage is real: a later
    /// read sees content that no longer matches the header checksum.
    fn roll_fault(
        &self,
        op: FaultOp,
        entry: Option<&mut SlotEntry>,
        addr: impl std::fmt::Display,
    ) -> Result<Nanos> {
        let Some(plan) = &self.fault else {
            return Ok(Nanos::ZERO);
        };
        let payload = entry.as_ref().map_or(0, |e| e.value.len());
        match plan.roll(FaultTier::Nvm, self.partition, op, payload) {
            None => Ok(Nanos::ZERO),
            Some(InjectedFault::IoError) => Err(PrismError::Io(format!(
                "injected nvm {op:?} fault at {addr} (partition {})",
                self.partition
            ))),
            Some(InjectedFault::LatencySpike(extra)) => Ok(extra),
            Some(InjectedFault::BitFlip { byte, bit }) => {
                if let Some(entry) = entry {
                    if !entry.value.is_empty() {
                        let mut bytes = entry.value.as_bytes().to_vec();
                        let idx = byte % bytes.len();
                        bytes[idx] ^= 1 << bit;
                        entry.value = Value::from_vec(bytes);
                    } else {
                        entry.checksum ^= 1;
                    }
                }
                Ok(Nanos::ZERO)
            }
            Some(InjectedFault::TornWrite { keep }) => {
                if let Some(entry) = entry {
                    if entry.value.is_empty() {
                        entry.checksum ^= 1;
                    } else {
                        let keep = keep.min(entry.value.len() - 1);
                        entry.value = Value::from_vec(entry.value.as_bytes()[..keep].to_vec());
                    }
                }
                Ok(Nanos::ZERO)
            }
        }
    }

    fn slab_for(&self, size: usize) -> Result<u8> {
        if size > MAX_OBJECT_SIZE {
            return Err(PrismError::ObjectTooLarge {
                size,
                max: MAX_OBJECT_SIZE,
            });
        }
        self.slabs
            .iter()
            .position(|s| s.slot_size() as usize >= size)
            .map(|i| i as u8)
            .ok_or(PrismError::ObjectTooLarge {
                size,
                max: self
                    .slabs
                    .last()
                    .map(|s| s.slot_size() as usize)
                    .unwrap_or(0),
            })
    }

    /// The slot size in bytes an object with a `value_len`-byte value
    /// occupies (its size class). Group-commit accounting uses this to
    /// tally the bytes a batch of slot writes transfers.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::ObjectTooLarge`] if no size class fits.
    pub fn slot_bytes_for(&self, value_len: usize) -> Result<u64> {
        let idx = self.slab_for(value_len)?;
        Ok(self.slabs[idx as usize].slot_size() as u64)
    }

    /// Insert a fresh object, returning its address and the simulated NVM
    /// write cost.
    ///
    /// # Errors
    ///
    /// * [`PrismError::ObjectTooLarge`] if the value exceeds 4 KB.
    /// * [`PrismError::CapacityExceeded`] if the store is full; the caller
    ///   (the engine) is expected to trigger a compaction and retry.
    pub fn insert(
        &mut self,
        key: Key,
        value: Value,
        timestamp: u64,
    ) -> Result<(NvmAddress, Nanos)> {
        let slab_idx = self.slab_for(value.len())?;
        let slot_size = self.slabs[slab_idx as usize].slot_size() as u64;
        // Capacity is enforced against *live* bytes: freed slots are
        // immediately reusable, and slots freed in one size class are
        // treated as reclaimable headroom for another (a real slab
        // allocator shrinks or repurposes slab files over time).
        if self.live_slot_bytes + slot_size > self.capacity_bytes {
            return Err(PrismError::CapacityExceeded {
                tier: "nvm",
                needed: slot_size,
                available: self.capacity_bytes.saturating_sub(self.live_slot_bytes),
            });
        }
        let mut entry = SlotEntry::new(key, value, timestamp);
        let key_id = entry.key.id();
        let extra = self.roll_fault(
            FaultOp::Write,
            Some(&mut entry),
            format_args!("key {key_id}"),
        )?;
        let reused_slot = {
            let slab = &mut self.slabs[slab_idx as usize];
            let before = slab.allocated_slots();
            let slot = slab.insert(entry);
            let grew = slab.allocated_slots() > before;
            if grew {
                self.used_bytes += slot_size;
                self.device.allocate(slot_size);
            }
            slot
        };
        self.live_objects += 1;
        self.live_slot_bytes += slot_size;
        let cost = self.device.write_random(slot_size) + extra;
        Ok((NvmAddress::new(slab_idx, reused_slot), cost))
    }

    /// Update the object at `addr`. If the new value still fits the slot's
    /// size class the update happens in place; otherwise the object moves
    /// to a different slab file and a new address is returned.
    ///
    /// # Errors
    ///
    /// Same as [`SlabStore::insert`], plus [`PrismError::Corruption`] if
    /// `addr` does not refer to a live slot.
    pub fn update(
        &mut self,
        addr: NvmAddress,
        key: &Key,
        value: Value,
        timestamp: u64,
    ) -> Result<(NvmAddress, Nanos)> {
        let new_slab = self.slab_for(value.len())?;
        if new_slab == addr.slab {
            let slot_size = self.slabs[addr.slab as usize].slot_size() as u64;
            let mut entry = SlotEntry::new(key.clone(), value, timestamp);
            let extra = self.roll_fault(FaultOp::Write, Some(&mut entry), addr)?;
            let ok = self.slabs[addr.slab as usize].update_in_place(addr.slot, entry);
            if !ok {
                return Err(PrismError::Corruption(format!(
                    "update of empty nvm slot {addr}"
                )));
            }
            let cost = self.device.write_random(slot_size) + extra;
            Ok((addr, cost))
        } else {
            // Size class changed: the paper deletes the old slot and inserts
            // into the new slab file. We insert first so that an
            // out-of-space failure leaves the previous version intact, then
            // free the old slot.
            let inserted = self.insert(key.clone(), value, timestamp)?;
            self.remove(addr)?;
            Ok(inserted)
        }
    }

    /// Read the object stored at `addr`, verifying its header checksum.
    ///
    /// # Errors
    ///
    /// * [`PrismError::Corruption`] if the address does not refer to a live
    ///   slot (a stale index entry) or the slot fails its checksum.
    /// * [`PrismError::Io`] for an injected read fault.
    pub fn read(&self, addr: NvmAddress) -> Result<(&SlotEntry, Nanos)> {
        let extra = self.roll_fault(FaultOp::Read, None, addr)?;
        let slab = self
            .slabs
            .get(addr.slab as usize)
            .ok_or_else(|| PrismError::Corruption(format!("unknown slab in address {addr}")))?;
        let entry = slab
            .get(addr.slot)
            .ok_or_else(|| PrismError::Corruption(format!("read of empty nvm slot {addr}")))?;
        let cost = self.device.read_random(slab.slot_size() as u64) + extra;
        if !entry.verify() {
            if let Some(plan) = &self.fault {
                plan.note_detected();
            }
            return Err(PrismError::Corruption(format!(
                "nvm slot {addr} failed checksum (partition {}, key {}, ts {})",
                self.partition,
                entry.key.id(),
                entry.timestamp
            )));
        }
        Ok((entry, cost))
    }

    /// Look at the object stored at `addr` without charging device time
    /// (used by compaction planning, which the paper serves from DRAM
    /// metadata).
    pub fn peek(&self, addr: NvmAddress) -> Option<&SlotEntry> {
        self.slabs.get(addr.slab as usize)?.get(addr.slot)
    }

    /// Free the slot at `addr`, returning the entry that was stored there.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::Corruption`] for a stale address.
    pub fn remove(&mut self, addr: NvmAddress) -> Result<SlotEntry> {
        let slab = self
            .slabs
            .get_mut(addr.slab as usize)
            .ok_or_else(|| PrismError::Corruption(format!("unknown slab in address {addr}")))?;
        let slot_size = slab.slot_size() as u64;
        let entry = slab
            .remove(addr.slot)
            .ok_or_else(|| PrismError::Corruption(format!("remove of empty nvm slot {addr}")))?;
        self.live_objects -= 1;
        self.live_slot_bytes -= slot_size;
        Ok(entry)
    }

    /// Space usage snapshot.
    pub fn usage(&self) -> SlabUsage {
        SlabUsage {
            used_bytes: self.used_bytes,
            live_bytes: self.live_slot_bytes,
            capacity_bytes: self.capacity_bytes,
            live_objects: self.live_objects,
        }
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.live_objects
    }

    /// Bytes of live object payloads (not rounded to slot sizes).
    pub fn live_bytes(&self) -> u64 {
        self.scan().map(|(_, e)| e.value.len() as u64).sum()
    }

    /// Iterate over every live object as `(address, entry)` — the recovery
    /// scan the paper performs to rebuild the B-tree index after a crash.
    pub fn scan(&self) -> impl Iterator<Item = (NvmAddress, &SlotEntry)> {
        self.slabs.iter().enumerate().flat_map(|(slab_idx, slab)| {
            slab.iter()
                .map(move |(slot, entry)| (NvmAddress::new(slab_idx as u8, slot), entry))
        })
    }

    /// The simulated cost of the recovery scan: one sequential read of all
    /// allocated slab bytes.
    pub fn recovery_scan_cost(&self) -> Nanos {
        self.device.read_sequential(self.used_bytes.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_storage::DeviceProfile;

    fn store(capacity: u64) -> SlabStore {
        let device = Arc::new(Device::new(DeviceProfile::optane_nvm(capacity * 2)));
        SlabStore::new(SlabConfig::small_objects(capacity), device).unwrap()
    }

    #[test]
    fn insert_read_roundtrip_and_size_classes() {
        let mut s = store(1 << 20);
        let (a_small, _) = s.insert(Key::from_id(1), Value::filled(100, 1), 1).unwrap();
        let (a_big, _) = s
            .insert(Key::from_id(2), Value::filled(3000, 2), 2)
            .unwrap();
        assert_eq!(a_small.slab, 0, "100B object goes to the 128B slab");
        assert_eq!(a_big.slab, 5, "3000B object goes to the 4096B slab");
        assert_eq!(s.read(a_small).unwrap().0.key.id(), 1);
        assert_eq!(s.read(a_big).unwrap().0.value.len(), 3000);
        assert_eq!(s.object_count(), 2);
        assert_eq!(s.usage().used_bytes, 128 + 4096);
    }

    #[test]
    fn oversized_objects_are_rejected() {
        let mut s = store(1 << 20);
        let err = s
            .insert(Key::from_id(1), Value::filled(5000, 0), 1)
            .unwrap_err();
        assert!(matches!(err, PrismError::ObjectTooLarge { .. }));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut s = store(1024);
        // 1024-byte capacity fits exactly eight 128-byte slots.
        for i in 0..8 {
            s.insert(Key::from_id(i), Value::filled(100, 0), i).unwrap();
        }
        let err = s
            .insert(Key::from_id(99), Value::filled(100, 0), 99)
            .unwrap_err();
        assert!(matches!(
            err,
            PrismError::CapacityExceeded { tier: "nvm", .. }
        ));
        // Freeing a slot makes room again without growing used bytes.
        let addr = NvmAddress::new(0, 3);
        s.remove(addr).unwrap();
        s.insert(Key::from_id(99), Value::filled(100, 0), 100)
            .unwrap();
        assert_eq!(s.usage().used_bytes, 1024);
    }

    #[test]
    fn in_place_update_vs_reclassified_update() {
        let mut s = store(1 << 20);
        let (addr, _) = s.insert(Key::from_id(7), Value::filled(200, 1), 1).unwrap();
        let (same, _) = s
            .update(addr, &Key::from_id(7), Value::filled(220, 2), 2)
            .unwrap();
        assert_eq!(same, addr, "same size class updates in place");
        let (moved, _) = s
            .update(addr, &Key::from_id(7), Value::filled(900, 3), 3)
            .unwrap();
        assert_ne!(moved.slab, addr.slab, "larger object moves slabs");
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.read(moved).unwrap().0.timestamp, 3);
        assert!(s.read(addr).is_err(), "old slot was freed");
    }

    #[test]
    fn stale_addresses_are_corruption_errors() {
        let mut s = store(1 << 20);
        let (addr, _) = s.insert(Key::from_id(1), Value::filled(64, 0), 1).unwrap();
        s.remove(addr).unwrap();
        assert!(matches!(s.read(addr), Err(PrismError::Corruption(_))));
        assert!(matches!(s.remove(addr), Err(PrismError::Corruption(_))));
        assert!(s.peek(addr).is_none());
    }

    #[test]
    fn scan_visits_all_live_objects() {
        let mut s = store(1 << 20);
        let mut addrs = Vec::new();
        for i in 0..20u64 {
            let size = 100 + (i as usize % 4) * 300;
            let (addr, _) = s
                .insert(Key::from_id(i), Value::filled(size, 0), i)
                .unwrap();
            addrs.push(addr);
        }
        for addr in addrs.iter().take(5) {
            s.remove(*addr).unwrap();
        }
        let mut ids: Vec<u64> = s.scan().map(|(_, e)| e.key.id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (5u64..20).collect::<Vec<_>>());
        assert!(s.live_bytes() > 0);
        assert!(s.recovery_scan_cost() > Nanos::ZERO);
    }

    #[test]
    fn device_io_is_charged() {
        let device = Arc::new(Device::new(DeviceProfile::optane_nvm(1 << 20)));
        let mut s = SlabStore::new(SlabConfig::small_objects(1 << 20), device.clone()).unwrap();
        let (addr, wcost) = s
            .insert(Key::from_id(1), Value::filled(1000, 0), 1)
            .unwrap();
        let (_, rcost) = s.read(addr).unwrap();
        assert!(wcost >= device.profile().write_latency_4k);
        assert!(rcost >= device.profile().read_latency_4k);
        let io = device.counters().as_tier_io();
        assert_eq!(io.writes, 1);
        assert_eq!(io.reads, 1);
    }

    #[test]
    fn injected_bit_flip_is_caught_by_read_checksum() {
        use prism_storage::{FaultMode, TargetedFault};

        let mut s = store(1 << 20);
        let plan = Arc::new(prism_storage::FaultPlan::new(3));
        s.attach_faults(plan.clone(), 7);
        let (clean_addr, _) = s.insert(Key::from_id(1), Value::filled(64, 1), 1).unwrap();

        plan.arm(TargetedFault {
            tier: FaultTier::Nvm,
            partition: Some(7),
            op: FaultOp::Write,
            mode: FaultMode::BitFlip,
        });
        let (bad_addr, _) = s.insert(Key::from_id(2), Value::filled(64, 2), 2).unwrap();

        assert!(s.read(clean_addr).is_ok());
        let err = s.read(bad_addr).unwrap_err();
        assert!(matches!(err, PrismError::Corruption(_)), "got {err:?}");
        assert!(err.to_string().contains("partition 7"));
        let snap = plan.snapshot();
        assert_eq!(snap.bit_flips, 1);
        assert_eq!(snap.detected, 1);
        // The corrupt slot is visible to a scan and fails verification
        // there too (how the scrubber finds it).
        let corrupt: Vec<_> = s.scan().filter(|(_, e)| !e.verify()).collect();
        assert_eq!(corrupt.len(), 1);
        assert_eq!(corrupt[0].0, bad_addr);
    }

    #[test]
    fn injected_torn_write_rejected_and_io_faults_surface() {
        use prism_storage::{FaultMode, TargetedFault};

        let mut s = store(1 << 20);
        let plan = Arc::new(prism_storage::FaultPlan::new(4));
        s.attach_faults(plan.clone(), 0);

        plan.arm(TargetedFault {
            tier: FaultTier::Nvm,
            partition: None,
            op: FaultOp::Write,
            mode: FaultMode::TornWrite,
        });
        let (torn_addr, _) = s.insert(Key::from_id(5), Value::filled(200, 5), 1).unwrap();
        assert!(matches!(s.read(torn_addr), Err(PrismError::Corruption(_))));

        plan.arm(TargetedFault {
            tier: FaultTier::Nvm,
            partition: None,
            op: FaultOp::Read,
            mode: FaultMode::IoError,
        });
        let (addr, _) = s.insert(Key::from_id(6), Value::filled(64, 6), 2).unwrap();
        assert!(matches!(s.read(addr), Err(PrismError::Io(_))));
        // One-shot: the next read succeeds.
        assert!(s.read(addr).is_ok());

        plan.arm(TargetedFault {
            tier: FaultTier::Nvm,
            partition: None,
            op: FaultOp::Write,
            mode: FaultMode::IoError,
        });
        let before = s.object_count();
        assert!(matches!(
            s.insert(Key::from_id(7), Value::filled(64, 7), 3),
            Err(PrismError::Io(_))
        ));
        assert_eq!(s.object_count(), before, "failed insert stores nothing");
    }

    #[test]
    fn repairing_update_clears_corruption() {
        use prism_storage::{FaultMode, TargetedFault};

        let mut s = store(1 << 20);
        let plan = Arc::new(prism_storage::FaultPlan::new(5));
        s.attach_faults(plan.clone(), 0);
        plan.arm(TargetedFault {
            tier: FaultTier::Nvm,
            partition: None,
            op: FaultOp::Write,
            mode: FaultMode::BitFlip,
        });
        let (addr, _) = s.insert(Key::from_id(9), Value::filled(64, 9), 1).unwrap();
        assert!(s.read(addr).is_err());
        // A rewrite with fresh content (the scrubber's repair) restores
        // the slot to a verifiable state.
        let (addr2, _) = s
            .update(addr, &Key::from_id(9), Value::filled(64, 9), 2)
            .unwrap();
        assert_eq!(s.read(addr2).unwrap().0.timestamp, 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let device = Arc::new(Device::new(DeviceProfile::optane_nvm(1 << 20)));
        let bad_empty = SlabConfig {
            slot_sizes: vec![],
            capacity_bytes: 1024,
        };
        assert!(SlabStore::new(bad_empty, device.clone()).is_err());
        let bad_order = SlabConfig {
            slot_sizes: vec![256, 128],
            capacity_bytes: 1024,
        };
        assert!(SlabStore::new(bad_order, device.clone()).is_err());
        let bad_capacity = SlabConfig {
            slot_sizes: vec![128],
            capacity_bytes: 0,
        };
        assert!(SlabStore::new(bad_capacity, device).is_err());
    }
}
