//! A single slab file: fixed-size slots for one object-size class.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use prism_types::checksum::Crc32;
use prism_types::{Key, Value};

/// One live object stored in a slab slot, together with the metadata header
/// the paper writes alongside it (logical timestamp and size are implied by
/// the stored value).
#[derive(Debug, Clone)]
pub struct SlotEntry {
    /// The object's key.
    pub key: Key,
    /// The object's value.
    pub value: Value,
    /// Logical timestamp assigned by the owning partition; used during
    /// recovery to keep only the most recent version of a key.
    pub timestamp: u64,
    /// CRC32 over key id, timestamp, value length and value bytes, written
    /// with the slot header and re-verified on every read, recovery scan
    /// and compaction execute.
    pub checksum: u32,
}

impl SlotEntry {
    /// Build an entry with its header checksum computed over the content.
    pub fn new(key: Key, value: Value, timestamp: u64) -> SlotEntry {
        let checksum = SlotEntry::compute_checksum(&key, &value, timestamp);
        SlotEntry {
            key,
            value,
            timestamp,
            checksum,
        }
    }

    /// The CRC32 a slot holding this content must carry.
    pub fn compute_checksum(key: &Key, value: &Value, timestamp: u64) -> u32 {
        let mut crc = Crc32::new();
        crc.update_u64(key.id());
        crc.update_u64(timestamp);
        crc.update_u64(value.len() as u64);
        crc.update(value.as_bytes());
        crc.finish()
    }

    /// True when the stored checksum still matches the slot's content —
    /// false after a bit flip in the value bytes or a torn write that
    /// truncated them.
    pub fn verify(&self) -> bool {
        self.checksum == SlotEntry::compute_checksum(&self.key, &self.value, self.timestamp)
    }
}

/// A slab file dedicated to one slot size.
///
/// Slots are identified by their index, which corresponds to their position
/// on the device; the free list hands out the lowest-indexed free slot first
/// so that consecutive small writes land on the same 4 KB page (§7.3 of the
/// paper).
#[derive(Debug)]
pub struct SlabFile {
    slot_size: u32,
    slots: Vec<Option<SlotEntry>>,
    free: BinaryHeap<Reverse<u32>>,
    live: usize,
}

impl SlabFile {
    /// Create an empty slab file whose slots hold objects of up to
    /// `slot_size` bytes.
    pub fn new(slot_size: u32) -> Self {
        SlabFile {
            slot_size,
            slots: Vec::new(),
            free: BinaryHeap::new(),
            live: 0,
        }
    }

    /// The slot size (bytes) of this slab file.
    pub fn slot_size(&self) -> u32 {
        self.slot_size
    }

    /// Number of live objects.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Number of allocated slots (live + free).
    pub fn allocated_slots(&self) -> usize {
        self.slots.len()
    }

    /// Bytes of NVM consumed by this slab file (all allocated slots).
    pub fn allocated_bytes(&self) -> u64 {
        self.slots.len() as u64 * self.slot_size as u64
    }

    /// Number of allocated-but-free slots available for reuse.
    pub fn free_slots(&self) -> usize {
        self.slots.len() - self.live
    }

    /// Store an entry in the lowest free slot (or a fresh slot at the end),
    /// returning the slot index.
    pub fn insert(&mut self, entry: SlotEntry) -> u32 {
        debug_assert!(entry.value.len() <= self.slot_size as usize);
        let slot = match self.free.pop() {
            Some(Reverse(idx)) => {
                self.slots[idx as usize] = Some(entry);
                idx
            }
            None => {
                self.slots.push(Some(entry));
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        slot
    }

    /// Overwrite the entry in `slot` in place. Returns `false` if the slot
    /// is empty (the caller's index was stale).
    pub fn update_in_place(&mut self, slot: u32, entry: SlotEntry) -> bool {
        debug_assert!(entry.value.len() <= self.slot_size as usize);
        match self.slots.get_mut(slot as usize) {
            Some(existing @ Some(_)) => {
                *existing = Some(entry);
                true
            }
            _ => false,
        }
    }

    /// Read the entry in `slot`, if the slot is live.
    pub fn get(&self, slot: u32) -> Option<&SlotEntry> {
        self.slots.get(slot as usize).and_then(|s| s.as_ref())
    }

    /// Free `slot`, returning the entry that was stored there.
    pub fn remove(&mut self, slot: u32) -> Option<SlotEntry> {
        let entry = self.slots.get_mut(slot as usize)?.take();
        if entry.is_some() {
            self.free.push(Reverse(slot));
            self.live -= 1;
        }
        entry
    }

    /// Iterate over all live slots as `(slot, entry)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &SlotEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i as u32, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, size: usize, ts: u64) -> SlotEntry {
        SlotEntry::new(Key::from_id(id), Value::filled(size, id as u8), ts)
    }

    #[test]
    fn insert_and_get() {
        let mut slab = SlabFile::new(256);
        let s0 = slab.insert(entry(1, 100, 1));
        let s1 = slab.insert(entry(2, 200, 2));
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(slab.get(s0).unwrap().key.id(), 1);
        assert_eq!(slab.get(s1).unwrap().timestamp, 2);
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.allocated_bytes(), 512);
    }

    #[test]
    fn freed_slots_are_reused_lowest_first() {
        let mut slab = SlabFile::new(128);
        for i in 0..5 {
            slab.insert(entry(i, 64, i));
        }
        slab.remove(3).unwrap();
        slab.remove(1).unwrap();
        assert_eq!(slab.live(), 3);
        // Lowest free slot (1) must be handed out before slot 3.
        assert_eq!(slab.insert(entry(10, 64, 10)), 1);
        assert_eq!(slab.insert(entry(11, 64, 11)), 3);
        assert_eq!(slab.insert(entry(12, 64, 12)), 5);
        assert_eq!(slab.allocated_slots(), 6);
    }

    #[test]
    fn update_in_place_keeps_slot() {
        let mut slab = SlabFile::new(256);
        let slot = slab.insert(entry(5, 100, 1));
        assert!(slab.update_in_place(slot, entry(5, 120, 2)));
        let got = slab.get(slot).unwrap();
        assert_eq!(got.value.len(), 120);
        assert_eq!(got.timestamp, 2);
        assert_eq!(slab.live(), 1);
        assert!(!slab.update_in_place(99, entry(5, 10, 3)));
    }

    #[test]
    fn remove_missing_slot_is_none() {
        let mut slab = SlabFile::new(128);
        assert!(slab.remove(0).is_none());
        let slot = slab.insert(entry(1, 50, 1));
        assert!(slab.remove(slot).is_some());
        assert!(slab.remove(slot).is_none());
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn slot_checksum_catches_bit_flips_and_truncation() {
        let good = entry(9, 80, 4);
        assert!(good.verify());

        let mut flipped_bytes = good.value.as_bytes().to_vec();
        flipped_bytes[40] ^= 0x20;
        let flipped = SlotEntry {
            value: Value::from_vec(flipped_bytes),
            ..good.clone()
        };
        assert!(!flipped.verify());

        let torn = SlotEntry {
            value: Value::from_vec(good.value.as_bytes()[..33].to_vec()),
            ..good.clone()
        };
        assert!(!torn.verify(), "a truncated-tail slot must be rejected");

        let stale_ts = SlotEntry {
            timestamp: good.timestamp + 1,
            ..good
        };
        assert!(!stale_ts.verify());
    }

    #[test]
    fn iter_returns_live_slots_in_order() {
        let mut slab = SlabFile::new(128);
        for i in 0..6 {
            slab.insert(entry(i, 32, i));
        }
        slab.remove(2);
        slab.remove(4);
        let ids: Vec<u64> = slab.iter().map(|(_, e)| e.key.id()).collect();
        assert_eq!(ids, vec![0, 1, 3, 5]);
    }
}
