//! Slab-based NVM object store.
//!
//! PrismDB writes all new data to NVM first (§4.1–4.2 of the paper). Because
//! NVM supports fast random writes and in-place updates, the NVM data layout
//! is a set of *slab files*, each dedicated to one object-size class, with
//! fixed-size slots. Objects carry a small metadata header (logical
//! timestamp + size) that makes crash recovery a linear scan of the slabs.
//!
//! This crate implements that layout:
//!
//! * [`SlabFile`] — one size class: slot allocation, in-place update, free
//!   slot reuse ordered by disk location (the §7.3 optimisation that keeps
//!   consecutive writes of tiny objects on the same OS page),
//! * [`SlabStore`] — the per-partition collection of slab files with
//!   capacity accounting, watermark queries and a recovery scan,
//! * [`NvmAddress`] — the compact (slab id, slot) address stored in the
//!   partition's B-tree index.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use prism_nvm::{SlabConfig, SlabStore};
//! use prism_storage::{Device, DeviceProfile};
//! use prism_types::{Key, Value};
//!
//! let device = Arc::new(Device::new(DeviceProfile::optane_nvm(1 << 20)));
//! let mut store = SlabStore::new(SlabConfig::small_objects(1 << 20), device).unwrap();
//! let (addr, _cost) = store.insert(Key::from_id(7), Value::filled(200, 1), 1).unwrap();
//! let (entry, _cost) = store.read(addr).unwrap();
//! assert_eq!(entry.key.id(), 7);
//! ```

mod slab;
mod store;

pub use slab::{SlabFile, SlotEntry};
pub use store::{SlabConfig, SlabStore, SlabUsage, MAX_OBJECT_SIZE};

use std::fmt;

/// Compact address of an object stored on NVM.
///
/// The paper stores a 1-byte slab id plus a 4-byte page offset in each
/// B-tree index entry; we keep the same footprint with a slab id and a slot
/// number within the slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NvmAddress {
    /// Which slab file (size class) the object lives in.
    pub slab: u8,
    /// Slot index within the slab file.
    pub slot: u32,
}

impl NvmAddress {
    /// Create an address.
    pub fn new(slab: u8, slot: u32) -> Self {
        NvmAddress { slab, slot }
    }
}

impl fmt::Display for NvmAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slab{}:{}", self.slab, self.slot)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use prism_storage::{Device, DeviceProfile};
    use prism_types::{Key, Value};
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Inserting, updating and removing arbitrary objects keeps the
        /// store consistent with a plain map model and never leaks slots.
        #[test]
        fn slab_store_matches_model(
            ops in prop::collection::vec((0u8..3, 0u64..50, 1usize..1500), 1..300)
        ) {
            let device = Arc::new(Device::new(DeviceProfile::optane_nvm(64 << 20)));
            let mut store = SlabStore::new(SlabConfig::small_objects(32 << 20), device).unwrap();
            let mut model: HashMap<u64, (usize, u64)> = HashMap::new();
            let mut addrs: HashMap<u64, NvmAddress> = HashMap::new();
            let mut ts = 0u64;

            for (op, id, size) in ops {
                ts += 1;
                let key = Key::from_id(id);
                match op {
                    0 => {
                        let value = Value::filled(size, id as u8);
                        if let Some(addr) = addrs.get(&key.id()).copied() {
                            let (new_addr, _) = store.update(addr, &key, value, ts).unwrap();
                            addrs.insert(id, new_addr);
                        } else {
                            let (addr, _) = store.insert(key.clone(), value, ts).unwrap();
                            addrs.insert(id, addr);
                        }
                        model.insert(id, (size, ts));
                    }
                    1 => {
                        if let Some(addr) = addrs.remove(&id) {
                            store.remove(addr).unwrap();
                            model.remove(&id);
                        }
                    }
                    _ => {
                        if let Some(addr) = addrs.get(&id) {
                            let (entry, _) = store.read(*addr).unwrap();
                            let (size, when) = model[&id];
                            prop_assert_eq!(entry.value.len(), size);
                            prop_assert_eq!(entry.timestamp, when);
                            prop_assert_eq!(entry.key.id(), id);
                        }
                    }
                }
                prop_assert_eq!(store.object_count(), model.len());
            }

            // Recovery scan sees exactly the live objects.
            let mut scanned: Vec<u64> = store.scan().map(|(_, e)| e.key.id()).collect();
            scanned.sort_unstable();
            let mut expected: Vec<u64> = model.keys().copied().collect();
            expected.sort_unstable();
            prop_assert_eq!(scanned, expected);
        }

        /// A freshly built slot always verifies, and flipping any single
        /// bit of its value is always detected by the header CRC.
        #[test]
        fn slot_checksum_roundtrips_and_catches_any_single_bit_flip(
            id in 0u64..1_000_000,
            ts in 0u64..u64::MAX,
            bytes in prop::collection::vec(0u8..255, 1..2048),
            flip_at in 0usize..usize::MAX,
            flip_bit in 0u32..8,
        ) {
            let entry = SlotEntry::new(Key::from_id(id), Value::from_vec(bytes.clone()), ts);
            prop_assert!(entry.verify(), "clean slot must round-trip");

            let mut damaged = bytes;
            let idx = flip_at % damaged.len();
            damaged[idx] ^= 1 << flip_bit;
            let flipped = SlotEntry {
                value: Value::from_vec(damaged),
                ..entry.clone()
            };
            prop_assert!(!flipped.verify(), "a single bit flip must fail the CRC");

            // Metadata damage is caught too: the CRC covers key id and
            // timestamp, not just the value bytes.
            let ts_flip = SlotEntry { timestamp: entry.timestamp ^ 1, ..entry };
            prop_assert!(!ts_flip.verify());
        }

        /// A torn write that truncated the value tail (any strictly
        /// shorter prefix, including empty) is always rejected: the CRC
        /// covers the length, so even a same-content prefix cannot pass.
        #[test]
        fn truncated_tail_slots_are_rejected(
            id in 0u64..1_000_000,
            ts in 0u64..u64::MAX,
            bytes in prop::collection::vec(0u8..255, 1..2048),
            keep in 0usize..usize::MAX,
        ) {
            let entry = SlotEntry::new(Key::from_id(id), Value::from_vec(bytes.clone()), ts);
            let keep = keep % bytes.len();
            let torn = SlotEntry {
                value: Value::from_vec(bytes[..keep].to_vec()),
                ..entry
            };
            prop_assert!(!torn.verify(), "a truncated slot must fail the CRC");
        }
    }
}
