//! A bloom filter over keys.
//!
//! PrismDB keeps one bloom filter per SST file on NVM so that lookups for
//! absent keys do not issue flash I/O (§4.1). The filter uses double
//! hashing over a 64-bit FNV-1a base hash, the same construction LevelDB
//! and RocksDB use.

use prism_types::Key;

/// A space-efficient approximate set membership structure.
///
/// # Example
///
/// ```
/// use prism_flash::BloomFilter;
/// use prism_types::Key;
///
/// let mut bloom = BloomFilter::new(100, 10);
/// bloom.add(&Key::from_id(1));
/// assert!(bloom.may_contain(&Key::from_id(1)));
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_probes: u32,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn mix(hash: u64) -> u64 {
    // 64-bit finalizer (splitmix64) to derive the second hash.
    let mut z = hash.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl BloomFilter {
    /// Build a filter sized for `expected_keys` keys with `bits_per_key`
    /// bits each (10 bits/key gives ~1 % false positives).
    pub fn new(expected_keys: usize, bits_per_key: usize) -> Self {
        let num_bits = (expected_keys.max(1) * bits_per_key.max(1)).max(64) as u64;
        let words = num_bits.div_ceil(64) as usize;
        // Optimal probe count is ln(2) * bits_per_key, clamped to a sane range.
        let num_probes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        BloomFilter {
            bits: vec![0u64; words],
            num_bits: words as u64 * 64,
            num_probes,
        }
    }

    fn probes(&self, key: &Key) -> impl Iterator<Item = u64> + '_ {
        let h1 = fnv1a(key.as_bytes());
        let h2 = mix(h1) | 1;
        let num_bits = self.num_bits;
        (0..self.num_probes).map(move |i| h1.wrapping_add(h2.wrapping_mul(i as u64)) % num_bits)
    }

    /// Insert a key.
    pub fn add(&mut self, key: &Key) {
        let positions: Vec<u64> = self.probes(key).collect();
        for pos in positions {
            self.bits[(pos / 64) as usize] |= 1 << (pos % 64);
        }
    }

    /// Check membership. May return `true` for keys never added (false
    /// positive) but never returns `false` for an added key.
    pub fn may_contain(&self, key: &Key) -> bool {
        self.probes(key)
            .collect::<Vec<_>>()
            .iter()
            .all(|pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Size of the filter in bytes (stored on NVM in PrismDB).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn added_keys_are_found() {
        let mut bloom = BloomFilter::new(1000, 10);
        for id in 0..1000u64 {
            bloom.add(&Key::from_id(id));
        }
        for id in 0..1000u64 {
            assert!(bloom.may_contain(&Key::from_id(id)));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let n = 10_000u64;
        let mut bloom = BloomFilter::new(n as usize, 10);
        for id in 0..n {
            bloom.add(&Key::from_id(id));
        }
        let mut false_positives = 0u64;
        let probes = 20_000u64;
        for id in n..(n + probes) {
            if bloom.may_contain(&Key::from_id(id)) {
                false_positives += 1;
            }
        }
        let rate = false_positives as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bloom = BloomFilter::new(100, 10);
        let hits = (0..1000u64)
            .filter(|id| bloom.may_contain(&Key::from_id(*id)))
            .count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn size_scales_with_keys() {
        let small = BloomFilter::new(100, 10);
        let large = BloomFilter::new(100_000, 10);
        assert!(large.size_bytes() > small.size_bytes() * 100);
    }

    #[test]
    fn degenerate_parameters_still_work() {
        let mut bloom = BloomFilter::new(0, 0);
        bloom.add(&Key::from_id(5));
        assert!(bloom.may_contain(&Key::from_id(5)));
    }
}
