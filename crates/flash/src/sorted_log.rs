//! The single-level sorted log of SST files.

use std::sync::Arc;

use prism_types::Key;

use crate::sst::{FileId, SstFile};

/// A sorted, non-overlapping sequence of SST files covering the partition's
/// flash-resident key space.
///
/// When the NVM share of the database is ≥ 10 % the paper stores all flash
/// data in this single-level log; lookups binary-search the file whose key
/// range covers the key and then probe that file.
#[derive(Debug, Default, Clone)]
pub struct SortedLog {
    files: Vec<Arc<SstFile>>,
}

impl SortedLog {
    /// An empty log.
    pub fn new() -> Self {
        SortedLog { files: Vec::new() }
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// True if the log holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total bytes across all live files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size_bytes()).sum()
    }

    /// Total number of entries across all live files.
    pub fn total_entries(&self) -> usize {
        self.files.iter().map(|f| f.len()).sum()
    }

    /// The live files in key order.
    pub fn files(&self) -> &[Arc<SstFile>] {
        &self.files
    }

    /// The file whose key range covers `key`, if any.
    pub fn lookup(&self, key: &Key) -> Option<&Arc<SstFile>> {
        let idx = self.files.partition_point(|f| f.max_key() < key);
        self.files.get(idx).filter(|f| f.covers(key))
    }

    /// All files whose key ranges overlap `[start, end]` (inclusive).
    pub fn overlapping(&self, start: &Key, end: &Key) -> Vec<Arc<SstFile>> {
        self.files
            .iter()
            .filter(|f| f.overlaps(start, end))
            .cloned()
            .collect()
    }

    /// Files in a contiguous window of `width` files starting at file index
    /// `start_idx` — the paper's compaction key ranges are the key ranges of
    /// `i` consecutive SST files.
    pub fn file_window(&self, start_idx: usize, width: usize) -> &[Arc<SstFile>] {
        let end = (start_idx + width.max(1)).min(self.files.len());
        &self.files[start_idx.min(self.files.len())..end]
    }

    /// Replace the files with ids in `remove` by `add` (already sorted and
    /// non-overlapping among themselves), keeping the log sorted.
    ///
    /// Returns the removed files so the caller can hand them to the
    /// [`crate::Manifest`] for deferred reclamation.
    pub fn install(&mut self, remove: &[FileId], add: Vec<Arc<SstFile>>) -> Vec<Arc<SstFile>> {
        let mut removed = Vec::new();
        self.files.retain(|f| {
            if remove.contains(&f.id()) {
                removed.push(f.clone());
                false
            } else {
                true
            }
        });
        self.files.extend(add);
        self.files.sort_by(|a, b| a.min_key().cmp(b.min_key()));
        removed
    }

    /// Iterate over all entries of all files in ascending key order.
    ///
    /// Files are non-overlapping so concatenation in file order is globally
    /// sorted.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &crate::sst::SstEntry)> {
        self.files
            .iter()
            .flat_map(|f| f.iter().map(|(k, e)| (k, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sst::{SstBuilder, SstEntry};
    use prism_storage::{Device, DeviceProfile};
    use prism_types::Value;

    fn file(id: FileId, ids: std::ops::Range<u64>) -> Arc<SstFile> {
        let dev = Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)));
        let mut b = SstBuilder::new(id);
        for i in ids {
            b.add(Key::from_id(i), SstEntry::value(Value::filled(50, 0), i));
        }
        Arc::new(b.finish(&dev).0)
    }

    #[test]
    fn lookup_routes_to_covering_file() {
        let mut log = SortedLog::new();
        log.install(
            &[],
            vec![file(1, 0..100), file(2, 100..200), file(3, 200..300)],
        );
        assert_eq!(log.file_count(), 3);
        assert_eq!(log.lookup(&Key::from_id(50)).unwrap().id(), 1);
        assert_eq!(log.lookup(&Key::from_id(150)).unwrap().id(), 2);
        assert_eq!(log.lookup(&Key::from_id(299)).unwrap().id(), 3);
        assert!(log.lookup(&Key::from_id(500)).is_none());
    }

    #[test]
    fn overlapping_selects_correct_files() {
        let mut log = SortedLog::new();
        log.install(
            &[],
            vec![file(1, 0..100), file(2, 100..200), file(3, 200..300)],
        );
        let overlap = log.overlapping(&Key::from_id(150), &Key::from_id(250));
        let ids: Vec<FileId> = overlap.iter().map(|f| f.id()).collect();
        assert_eq!(ids, vec![2, 3]);
        assert!(log
            .overlapping(&Key::from_id(1000), &Key::from_id(2000))
            .is_empty());
    }

    #[test]
    fn install_replaces_files_and_keeps_order() {
        let mut log = SortedLog::new();
        log.install(&[], vec![file(2, 100..200), file(1, 0..100)]);
        let removed = log.install(&[1], vec![file(4, 0..50), file(5, 50..100)]);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].id(), 1);
        let mins: Vec<u64> = log.files().iter().map(|f| f.min_key().id()).collect();
        assert_eq!(mins, vec![0, 50, 100]);
        assert_eq!(log.total_entries(), 200);
    }

    #[test]
    fn iter_is_globally_sorted() {
        let mut log = SortedLog::new();
        log.install(&[], vec![file(2, 100..150), file(1, 0..50)]);
        let keys: Vec<u64> = log.iter().map(|(k, _)| k.id()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 100);
    }

    #[test]
    fn file_window_clamps_bounds() {
        let mut log = SortedLog::new();
        log.install(&[], vec![file(1, 0..10), file(2, 10..20), file(3, 20..30)]);
        assert_eq!(log.file_window(0, 2).len(), 2);
        assert_eq!(log.file_window(2, 5).len(), 1);
        assert_eq!(log.file_window(9, 1).len(), 0);
        assert_eq!(log.file_window(1, 0).len(), 1, "width is at least one file");
    }

    #[test]
    fn empty_log_behaviour() {
        let log = SortedLog::new();
        assert!(log.is_empty());
        assert_eq!(log.total_bytes(), 0);
        assert!(log.lookup(&Key::from_id(1)).is_none());
    }
}
