//! The manifest: live-file tracking with deferred reclamation.
//!
//! Like RocksDB, PrismDB keeps an on-disk manifest listing the partition's
//! live SST files so recovery can reconstruct a consistent view of the flash
//! database, and uses reference counting so a file replaced by compaction is
//! only deleted once no in-flight `Get`/`Scan` still reads it (§6 of the
//! paper). In this reproduction readers hold `Arc<SstFile>` clones, so the
//! strong count plays the role of the reference count.

use std::collections::BTreeMap;
use std::sync::Arc;

use prism_storage::Device;
use prism_types::{PrismError, Result};

use crate::sst::{FileId, SstFile};

/// One edit applied to the manifest (mirrors RocksDB's version edits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestEdit {
    /// A new file became live.
    AddFile(FileId),
    /// A file was removed from the live set by a compaction.
    RemoveFile(FileId),
}

/// Registry of live SST files plus a log of edits and a deferred-deletion
/// list for files that still have readers.
#[derive(Debug, Default)]
pub struct Manifest {
    live: BTreeMap<FileId, Arc<SstFile>>,
    obsolete: Vec<Arc<SstFile>>,
    edits: Vec<ManifestEdit>,
    next_file_id: FileId,
}

impl Manifest {
    /// An empty manifest.
    pub fn new() -> Self {
        Manifest {
            live: BTreeMap::new(),
            obsolete: Vec::new(),
            edits: Vec::new(),
            next_file_id: 1,
        }
    }

    /// Allocate the next SST file id.
    pub fn allocate_file_id(&mut self) -> FileId {
        let id = self.next_file_id;
        self.next_file_id += 1;
        id
    }

    /// Record a new live file.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::Corruption`] if a file with the same id is
    /// already live.
    pub fn add_file(&mut self, file: Arc<SstFile>) -> Result<()> {
        let id = file.id();
        if self.live.insert(id, file).is_some() {
            return Err(PrismError::Corruption(format!(
                "manifest already contains live file {id}"
            )));
        }
        self.edits.push(ManifestEdit::AddFile(id));
        Ok(())
    }

    /// Remove a file from the live set. The file's space is reclaimed later
    /// by [`Manifest::collect_garbage`] once no reader holds it.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::Corruption`] if the file is not live.
    pub fn remove_file(&mut self, id: FileId) -> Result<()> {
        match self.live.remove(&id) {
            Some(file) => {
                self.edits.push(ManifestEdit::RemoveFile(id));
                self.obsolete.push(file);
                Ok(())
            }
            None => Err(PrismError::Corruption(format!(
                "manifest removal of unknown file {id}"
            ))),
        }
    }

    /// True if `id` is currently live.
    pub fn is_live(&self, id: FileId) -> bool {
        self.live.contains_key(&id)
    }

    /// Number of live files.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Number of files waiting for their last reader before deletion.
    pub fn obsolete_count(&self) -> usize {
        self.obsolete.len()
    }

    /// The live files, in file-id order.
    pub fn live_files(&self) -> impl Iterator<Item = &Arc<SstFile>> {
        self.live.values()
    }

    /// The edit log since startup (what the on-disk manifest would contain).
    pub fn edits(&self) -> &[ManifestEdit] {
        &self.edits
    }

    /// Reclaim obsolete files that no longer have outside readers, releasing
    /// their space on `device`. Returns the number of bytes freed.
    ///
    /// A file is reclaimable when the manifest holds the only remaining
    /// `Arc` reference (strong count of 1).
    pub fn collect_garbage(&mut self, device: &Arc<Device>) -> u64 {
        let mut freed = 0u64;
        self.obsolete.retain(|file| {
            if Arc::strong_count(file) == 1 {
                freed += file.size_bytes();
                device.release(file.size_bytes());
                false
            } else {
                true
            }
        });
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sst::{SstBuilder, SstEntry};
    use prism_storage::DeviceProfile;
    use prism_types::{Key, Value};

    fn make_file(device: &Arc<Device>, id: FileId, n: u64) -> Arc<SstFile> {
        let mut b = SstBuilder::new(id);
        for i in 0..n {
            b.add(
                Key::from_id(id * 1000 + i),
                SstEntry::value(Value::filled(100, 0), i),
            );
        }
        Arc::new(b.finish(device).0)
    }

    #[test]
    fn add_remove_and_edit_log() {
        let device = Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)));
        let mut manifest = Manifest::new();
        let id1 = manifest.allocate_file_id();
        let id2 = manifest.allocate_file_id();
        assert_ne!(id1, id2);
        let f1 = make_file(&device, id1, 10);
        let f2 = make_file(&device, id2, 10);
        manifest.add_file(f1).unwrap();
        manifest.add_file(f2).unwrap();
        assert_eq!(manifest.live_count(), 2);
        assert!(manifest.is_live(id1));
        manifest.remove_file(id1).unwrap();
        assert!(!manifest.is_live(id1));
        assert_eq!(manifest.obsolete_count(), 1);
        assert_eq!(
            manifest.edits(),
            &[
                ManifestEdit::AddFile(id1),
                ManifestEdit::AddFile(id2),
                ManifestEdit::RemoveFile(id1)
            ]
        );
    }

    #[test]
    fn duplicate_add_and_unknown_remove_are_errors() {
        let device = Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)));
        let mut manifest = Manifest::new();
        let id = manifest.allocate_file_id();
        let f = make_file(&device, id, 5);
        manifest.add_file(f.clone()).unwrap();
        assert!(manifest.add_file(f).is_err());
        assert!(manifest.remove_file(999).is_err());
    }

    #[test]
    fn garbage_collection_waits_for_readers() {
        let device = Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)));
        let mut manifest = Manifest::new();
        let id = manifest.allocate_file_id();
        let f = make_file(&device, id, 50);
        let used_before = device.used_bytes();
        assert!(used_before > 0);
        manifest.add_file(f.clone()).unwrap();
        manifest.remove_file(id).unwrap();

        // A concurrent reader (the clone `f`) still holds the file: no space
        // may be reclaimed yet.
        assert_eq!(manifest.collect_garbage(&device), 0);
        assert_eq!(manifest.obsolete_count(), 1);
        assert_eq!(device.used_bytes(), used_before);

        drop(f);
        let freed = manifest.collect_garbage(&device);
        assert!(freed > 0);
        assert_eq!(manifest.obsolete_count(), 0);
        assert_eq!(device.used_bytes(), 0);
    }

    #[test]
    fn live_files_iterates_in_id_order() {
        let device = Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)));
        let mut manifest = Manifest::new();
        let ids: Vec<FileId> = (0..5).map(|_| manifest.allocate_file_id()).collect();
        for &id in ids.iter().rev() {
            manifest.add_file(make_file(&device, id, 3)).unwrap();
        }
        let live_ids: Vec<FileId> = manifest.live_files().map(|f| f.id()).collect();
        assert_eq!(live_ids, ids);
    }
}
