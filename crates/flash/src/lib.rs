//! Flash data layout: bloom filters, SST files, the sorted log and the
//! manifest.
//!
//! PrismDB stores cold data on flash as Sorted String Table (SST) files in a
//! log (§4.1 of the paper). Each SST file holds a disjoint key range, an
//! index of its 4 KB data blocks, and a bloom filter; the index and filter
//! are kept on NVM so that a flash I/O is only issued when the object is
//! very likely present. The same SST format is reused by the LSM baseline
//! family in `prism-lsm`, exactly as the paper's PrismDB reuses LevelDB's
//! SST format.
//!
//! The crate provides:
//!
//! * [`BloomFilter`] — a classic partitioned-hash bloom filter,
//! * [`SstBuilder`] / [`SstFile`] — building and querying immutable sorted
//!   files made of 4 KB blocks,
//! * [`SortedLog`] — the single-level, non-overlapping file log PrismDB
//!   uses by default when NVM holds ≥ 10 % of the database,
//! * [`Manifest`] — the live-file registry with reference counting, so a
//!   file replaced by compaction is only reclaimed once no reader holds it.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use prism_flash::{SstBuilder, SstEntry, SortedLog};
//! use prism_storage::{Device, DeviceProfile};
//! use prism_types::{Key, Value};
//!
//! let flash = Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)));
//! let mut builder = SstBuilder::new(1);
//! for id in 0..100u64 {
//!     builder.add(Key::from_id(id), SstEntry::value(Value::filled(100, 1), id));
//! }
//! let (sst, _cost) = builder.finish(&flash);
//! let mut log = SortedLog::new();
//! log.install(&[], vec![Arc::new(sst)]);
//! let hit = log.lookup(&Key::from_id(42)).unwrap();
//! assert!(hit.probe(&Key::from_id(42)).may_contain);
//! ```

mod bloom;
mod manifest;
mod sorted_log;
mod sst;

pub use bloom::BloomFilter;
pub use manifest::{Manifest, ManifestEdit};
pub use sorted_log::SortedLog;
pub use sst::{BlockProbe, FileId, SstBuilder, SstEntry, SstFile};

#[cfg(test)]
mod proptests {
    use super::*;
    use prism_storage::{Device, DeviceProfile};
    use prism_types::{Key, Value};
    use proptest::prelude::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A bloom filter never produces a false negative.
        #[test]
        fn bloom_has_no_false_negatives(keys in prop::collection::hash_set(0u64..100_000, 1..500)) {
            let mut bloom = BloomFilter::new(keys.len(), 10);
            for &k in &keys {
                bloom.add(&Key::from_id(k));
            }
            for &k in &keys {
                prop_assert!(bloom.may_contain(&Key::from_id(k)));
            }
        }

        /// SST lookups agree with an ordered-map model for both present and
        /// absent keys.
        #[test]
        fn sst_lookup_matches_model(ids in prop::collection::btree_set(0u64..10_000, 1..400)) {
            let flash = Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)));
            let mut builder = SstBuilder::new(7);
            let mut model = BTreeMap::new();
            for &id in &ids {
                let value = Value::filled((id % 700 + 1) as usize, id as u8);
                builder.add(Key::from_id(id), SstEntry::value(value.clone(), id));
                model.insert(id, value);
            }
            let (sst, _) = builder.finish(&flash);
            for probe_id in (0..10_000u64).step_by(53) {
                let key = Key::from_id(probe_id);
                let probe = sst.probe(&key);
                match model.get(&probe_id) {
                    Some(expected) => {
                        let entry = probe.entry.expect("present key must be found");
                        prop_assert_eq!(entry.value.as_ref().unwrap(), expected);
                        prop_assert!(probe.data_block_bytes > 0);
                    }
                    None => {
                        prop_assert!(probe.entry.is_none());
                    }
                }
            }
        }

        /// An SST record round-trips its checksum, and flipping any single
        /// bit of the stored value is always detected; tombstones catch
        /// timestamp damage the same way.
        #[test]
        fn sst_record_checksum_catches_any_single_bit_flip(
            ts in 0u64..u64::MAX,
            bytes in prop::collection::vec(0u8..255, 1..2048),
            flip_at in 0usize..usize::MAX,
            flip_bit in 0u32..8,
        ) {
            let entry = SstEntry::value(Value::from_vec(bytes.clone()), ts);
            prop_assert!(entry.verify(), "clean record must round-trip");

            let mut damaged = bytes;
            let idx = flip_at % damaged.len();
            damaged[idx] ^= 1 << flip_bit;
            let flipped = SstEntry {
                value: Some(Value::from_vec(damaged)),
                ..entry.clone()
            };
            prop_assert!(!flipped.verify(), "a single bit flip must fail the CRC");

            let tomb = SstEntry::tombstone(ts);
            prop_assert!(tomb.verify());
            let tomb_flip = SstEntry { timestamp: tomb.timestamp ^ 1, ..tomb };
            prop_assert!(!tomb_flip.verify());

            // A value record cannot masquerade as a tombstone or vice
            // versa: the CRC domain-separates the two shapes.
            let emptied = SstEntry { value: None, ..entry };
            prop_assert!(!emptied.verify());
        }

        /// A torn record whose value lost its tail (any strictly shorter
        /// prefix) is always rejected — the CRC covers the length.
        #[test]
        fn truncated_sst_records_are_rejected(
            ts in 0u64..u64::MAX,
            bytes in prop::collection::vec(0u8..255, 1..2048),
            keep in 0usize..usize::MAX,
        ) {
            let entry = SstEntry::value(Value::from_vec(bytes.clone()), ts);
            let keep = keep % bytes.len();
            let torn = SstEntry {
                value: Some(Value::from_vec(bytes[..keep].to_vec())),
                ..entry
            };
            prop_assert!(!torn.verify(), "a truncated record must fail the CRC");
        }

        /// File-level integrity: block and footer checksums chain the
        /// record CRCs, so a file built clean verifies, and damaging any
        /// one record breaks both the record and its containing block —
        /// `corrupt_keys` pinpoints exactly the damaged key.
        #[test]
        fn sst_file_checksums_localise_a_damaged_record(
            ids in prop::collection::btree_set(0u64..5_000, 2..200),
            victim in 0usize..usize::MAX,
            flip_bit in 0u32..8,
        ) {
            let flash = Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)));
            let mut builder = SstBuilder::new(11);
            for &id in &ids {
                let value = Value::filled((id % 300 + 1) as usize, id as u8);
                builder.add(Key::from_id(id), SstEntry::value(value, id + 1));
            }
            let (sst, _) = builder.finish(&flash);
            prop_assert!(sst.verify_integrity(), "a clean file must verify");
            prop_assert!(sst.corrupt_keys().is_empty());

            // Rebuild the same file with one record bit-flipped after its
            // checksum was computed (what a write-path fault does).
            let victim_id = *ids.iter().nth(victim % ids.len()).unwrap();
            let mut builder = SstBuilder::new(12);
            for &id in &ids {
                let value = Value::filled((id % 300 + 1) as usize, id as u8);
                let mut entry = SstEntry::value(value, id + 1);
                if id == victim_id {
                    let mut damaged = entry.value.as_ref().unwrap().as_bytes().to_vec();
                    damaged[0] ^= 1 << flip_bit;
                    entry.value = Some(Value::from_vec(damaged));
                }
                builder.add(Key::from_id(id), entry);
            }
            let (damaged_sst, _) = builder.finish(&flash);
            let corrupt = damaged_sst.corrupt_keys();
            prop_assert_eq!(corrupt.len(), 1);
            prop_assert_eq!(corrupt[0].id(), victim_id);
            let probe = damaged_sst.probe(&Key::from_id(victim_id));
            prop_assert!(probe.corrupt, "the probe must withhold the damaged record");
            prop_assert!(probe.entry.is_none());
        }
    }
}
