//! Flash data layout: bloom filters, SST files, the sorted log and the
//! manifest.
//!
//! PrismDB stores cold data on flash as Sorted String Table (SST) files in a
//! log (§4.1 of the paper). Each SST file holds a disjoint key range, an
//! index of its 4 KB data blocks, and a bloom filter; the index and filter
//! are kept on NVM so that a flash I/O is only issued when the object is
//! very likely present. The same SST format is reused by the LSM baseline
//! family in `prism-lsm`, exactly as the paper's PrismDB reuses LevelDB's
//! SST format.
//!
//! The crate provides:
//!
//! * [`BloomFilter`] — a classic partitioned-hash bloom filter,
//! * [`SstBuilder`] / [`SstFile`] — building and querying immutable sorted
//!   files made of 4 KB blocks,
//! * [`SortedLog`] — the single-level, non-overlapping file log PrismDB
//!   uses by default when NVM holds ≥ 10 % of the database,
//! * [`Manifest`] — the live-file registry with reference counting, so a
//!   file replaced by compaction is only reclaimed once no reader holds it.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use prism_flash::{SstBuilder, SstEntry, SortedLog};
//! use prism_storage::{Device, DeviceProfile};
//! use prism_types::{Key, Value};
//!
//! let flash = Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)));
//! let mut builder = SstBuilder::new(1);
//! for id in 0..100u64 {
//!     builder.add(Key::from_id(id), SstEntry::value(Value::filled(100, 1), id));
//! }
//! let (sst, _cost) = builder.finish(&flash);
//! let mut log = SortedLog::new();
//! log.install(&[], vec![Arc::new(sst)]);
//! let hit = log.lookup(&Key::from_id(42)).unwrap();
//! assert!(hit.probe(&Key::from_id(42)).may_contain);
//! ```

mod bloom;
mod manifest;
mod sorted_log;
mod sst;

pub use bloom::BloomFilter;
pub use manifest::{Manifest, ManifestEdit};
pub use sorted_log::SortedLog;
pub use sst::{BlockProbe, FileId, SstBuilder, SstEntry, SstFile};

#[cfg(test)]
mod proptests {
    use super::*;
    use prism_storage::{Device, DeviceProfile};
    use prism_types::{Key, Value};
    use proptest::prelude::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A bloom filter never produces a false negative.
        #[test]
        fn bloom_has_no_false_negatives(keys in prop::collection::hash_set(0u64..100_000, 1..500)) {
            let mut bloom = BloomFilter::new(keys.len(), 10);
            for &k in &keys {
                bloom.add(&Key::from_id(k));
            }
            for &k in &keys {
                prop_assert!(bloom.may_contain(&Key::from_id(k)));
            }
        }

        /// SST lookups agree with an ordered-map model for both present and
        /// absent keys.
        #[test]
        fn sst_lookup_matches_model(ids in prop::collection::btree_set(0u64..10_000, 1..400)) {
            let flash = Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)));
            let mut builder = SstBuilder::new(7);
            let mut model = BTreeMap::new();
            for &id in &ids {
                let value = Value::filled((id % 700 + 1) as usize, id as u8);
                builder.add(Key::from_id(id), SstEntry::value(value.clone(), id));
                model.insert(id, value);
            }
            let (sst, _) = builder.finish(&flash);
            for probe_id in (0..10_000u64).step_by(53) {
                let key = Key::from_id(probe_id);
                let probe = sst.probe(&key);
                match model.get(&probe_id) {
                    Some(expected) => {
                        let entry = probe.entry.expect("present key must be found");
                        prop_assert_eq!(entry.value.as_ref().unwrap(), expected);
                        prop_assert!(probe.data_block_bytes > 0);
                    }
                    None => {
                        prop_assert!(probe.entry.is_none());
                    }
                }
            }
        }
    }
}
