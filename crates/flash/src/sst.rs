//! Sorted String Table (SST) files.

use std::sync::Arc;

use prism_storage::{Device, FaultTier, InjectedFault};
use prism_types::checksum::Crc32;
use prism_types::{Key, Nanos, Value};

use crate::bloom::BloomFilter;

/// Target size of one SST data block.
pub const BLOCK_SIZE: usize = 4096;

/// Identifier of an SST file, unique within one engine.
pub type FileId = u64;

/// One record stored in an SST file.
///
/// A record is either a value with its logical timestamp, or a delete
/// tombstone (written when a deleted key's latest version lives on flash).
#[derive(Debug, Clone)]
pub struct SstEntry {
    /// The stored value; `None` marks a tombstone.
    pub value: Option<Value>,
    /// Logical timestamp of the version.
    pub timestamp: u64,
    /// CRC32 over the timestamp, tombstone flag, value length and value
    /// bytes, written with the record and re-verified on every probe,
    /// range read, recovery scan and compaction execute.
    pub checksum: u32,
}

impl SstEntry {
    /// A live value entry.
    pub fn value(value: Value, timestamp: u64) -> Self {
        let checksum = SstEntry::compute_checksum(Some(&value), timestamp);
        SstEntry {
            value: Some(value),
            timestamp,
            checksum,
        }
    }

    /// A delete tombstone.
    pub fn tombstone(timestamp: u64) -> Self {
        SstEntry {
            value: None,
            timestamp,
            checksum: SstEntry::compute_checksum(None, timestamp),
        }
    }

    /// The CRC32 a record with this content must carry.
    pub fn compute_checksum(value: Option<&Value>, timestamp: u64) -> u32 {
        let mut crc = Crc32::new();
        crc.update_u64(timestamp);
        match value {
            Some(v) => {
                crc.update_u64(1 + v.len() as u64);
                crc.update(v.as_bytes());
            }
            None => crc.update_u64(0),
        }
        crc.finish()
    }

    /// True when the stored checksum still matches the record content —
    /// false after a bit flip or a torn write truncated the value.
    pub fn verify(&self) -> bool {
        self.checksum == SstEntry::compute_checksum(self.value.as_ref(), self.timestamp)
    }

    /// True if this entry is a tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// Size in bytes this entry contributes to a data block.
    pub fn encoded_size(&self, key: &Key) -> usize {
        key.len() + self.value.as_ref().map(Value::len).unwrap_or(0) + 16
    }
}

#[derive(Debug, Clone)]
struct BlockMeta {
    first_key: Key,
    start: usize,
    len: usize,
    bytes: u64,
    /// CRC32 chaining the record checksums of the block, written in the
    /// block trailer and verified by [`SstFile::verify_integrity`].
    checksum: u32,
}

/// Result of probing an SST file for a key.
///
/// The probe itself does not charge device time; the caller decides which
/// device (and which tier) pays for the index/filter lookup and the data
/// block read, because PrismDB keeps the index and filter on NVM while the
/// LSM baselines keep them in the block cache.
#[derive(Debug, Clone)]
pub struct BlockProbe {
    /// The entry, if the key is present in the file.
    pub entry: Option<SstEntry>,
    /// True if the bloom filter could not rule the key out (so an index and
    /// data-block access was required).
    pub may_contain: bool,
    /// Bytes of data block that had to be read from flash (0 when the bloom
    /// filter rejected the key).
    pub data_block_bytes: u64,
    /// True when the key was found but its record failed the checksum;
    /// `entry` is withheld (`None`) so corrupt bytes are never served —
    /// the caller must surface `PrismError::Corruption` instead.
    pub corrupt: bool,
}

/// An immutable sorted file of key-value entries, made of ~4 KB blocks with
/// a per-file block index and bloom filter.
#[derive(Debug)]
pub struct SstFile {
    id: FileId,
    entries: Vec<(Key, SstEntry)>,
    blocks: Vec<BlockMeta>,
    bloom: BloomFilter,
    total_bytes: u64,
    min_key: Key,
    max_key: Key,
    /// CRC32 of the file footer: chains every block checksum plus the
    /// file id and size, so metadata damage is detected before any block
    /// is trusted.
    footer_checksum: u32,
}

impl SstFile {
    /// File identifier.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// Smallest key in the file (recorded in the footer at build time, so
    /// no panic path even if the entry vector were damaged).
    pub fn min_key(&self) -> &Key {
        &self.min_key
    }

    /// Largest key in the file.
    pub fn max_key(&self) -> &Key {
        &self.max_key
    }

    fn compute_footer_checksum(id: FileId, total_bytes: u64, blocks: &[BlockMeta]) -> u32 {
        let mut crc = Crc32::new();
        crc.update_u64(id);
        crc.update_u64(total_bytes);
        crc.update_u64(blocks.len() as u64);
        for block in blocks {
            crc.update_u32(block.checksum);
        }
        crc.finish()
    }

    fn compute_block_checksum(entries: &[(Key, SstEntry)]) -> u32 {
        let mut crc = Crc32::new();
        for (key, entry) in entries {
            crc.update_u64(key.id());
            crc.update_u32(entry.checksum);
        }
        crc.finish()
    }

    /// Walk every record and return the keys whose checksums fail.
    ///
    /// Used by the recovery scan and the scrubber; the per-read hot path
    /// only verifies the record it serves.
    pub fn corrupt_keys(&self) -> Vec<Key> {
        self.entries
            .iter()
            .filter(|(_, entry)| !entry.verify())
            .map(|(key, _)| key.clone())
            .collect()
    }

    /// True when footer, block trailers and every record all pass their
    /// checksums.
    pub fn verify_integrity(&self) -> bool {
        self.footer_checksum
            == SstFile::compute_footer_checksum(self.id, self.total_bytes, &self.blocks)
            && self.blocks.iter().all(|block| {
                let slice = &self.entries[block.start..block.start + block.len];
                SstFile::compute_block_checksum(slice) == block.checksum
            })
            && self.corrupt_keys().is_empty()
    }

    /// Number of entries in the file.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// SST files are never empty, but the conventional check is provided.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of encoded data blocks.
    pub fn size_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes of index + filter metadata (stored on NVM in PrismDB).
    pub fn metadata_bytes(&self) -> u64 {
        (self.blocks.len() * 32 + self.bloom.size_bytes()) as u64
    }

    /// True if `key` falls within the file's key range.
    pub fn covers(&self, key: &Key) -> bool {
        key >= self.min_key() && key <= self.max_key()
    }

    /// True if the file's key range overlaps `[start, end]`.
    pub fn overlaps(&self, start: &Key, end: &Key) -> bool {
        self.min_key() <= end && self.max_key() >= start
    }

    /// Probe the file for `key`: bloom filter, then block index, then a
    /// binary search within the data block.
    pub fn probe(&self, key: &Key) -> BlockProbe {
        if !self.bloom.may_contain(key) {
            return BlockProbe {
                entry: None,
                may_contain: false,
                data_block_bytes: 0,
                corrupt: false,
            };
        }
        // Find the block whose first key is <= key.
        let block_idx = match self.blocks.partition_point(|b| &b.first_key <= key) {
            0 => {
                return BlockProbe {
                    entry: None,
                    may_contain: true,
                    data_block_bytes: 0,
                    corrupt: false,
                }
            }
            n => n - 1,
        };
        let block = &self.blocks[block_idx];
        let slice = &self.entries[block.start..block.start + block.len];
        let entry = slice
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| slice[i].1.clone());
        // Verify the record before serving it: a failed checksum is
        // reported as corruption, never returned as data.
        let corrupt = entry.as_ref().map(|e| !e.verify()).unwrap_or(false);
        BlockProbe {
            entry: if corrupt { None } else { entry },
            may_contain: true,
            data_block_bytes: block.bytes,
            corrupt,
        }
    }

    /// Iterate over all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &(Key, SstEntry)> {
        self.entries.iter()
    }

    /// Iterate over entries with keys in `[start, end]` (inclusive).
    pub fn range(&self, start: &Key, end: &Key) -> impl Iterator<Item = &(Key, SstEntry)> {
        let lo = self.entries.partition_point(|(k, _)| k < start);
        let hi = self.entries.partition_point(|(k, _)| k <= end);
        self.entries[lo..hi].iter()
    }

    /// Number of entries with keys in `[start, end]` (inclusive), without
    /// iterating.
    pub fn count_in_range(&self, start: &Key, end: &Key) -> usize {
        let lo = self.entries.partition_point(|(k, _)| k < start);
        let hi = self.entries.partition_point(|(k, _)| k <= end);
        hi - lo
    }
}

/// Builder producing an [`SstFile`] from entries added in ascending key
/// order.
#[derive(Debug)]
pub struct SstBuilder {
    id: FileId,
    entries: Vec<(Key, SstEntry)>,
    bytes: u64,
    partition: usize,
}

impl SstBuilder {
    /// Start building file `id`.
    pub fn new(id: FileId) -> Self {
        SstBuilder {
            id,
            entries: Vec::new(),
            bytes: 0,
            partition: 0,
        }
    }

    /// Tag the builder with the owning partition, giving the device's
    /// fault plan (if any) its targeting context.
    pub fn for_partition(mut self, partition: usize) -> Self {
        self.partition = partition;
        self
    }

    /// Append an entry. Keys must be added in strictly ascending order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if keys are added out of order.
    pub fn add(&mut self, key: Key, entry: SstEntry) {
        debug_assert!(
            self.entries.last().map(|(k, _)| k < &key).unwrap_or(true),
            "SST entries must be added in ascending key order"
        );
        self.bytes += entry.encoded_size(&key) as u64;
        self.entries.push((key, entry));
    }

    /// Number of entries added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated encoded size so far.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }

    /// Finish the file, charging one sequential flash write of its full
    /// size to `device` and returning the file plus the simulated cost.
    ///
    /// # Panics
    ///
    /// Panics if no entries were added; callers must not create empty SSTs.
    pub fn finish(self, device: &Arc<Device>) -> (SstFile, Nanos) {
        assert!(!self.entries.is_empty(), "cannot build an empty SST file");
        let mut entries = self.entries;

        // Write-path fault injection: corrupt stored bytes *after* each
        // record's checksum was computed, so a later probe or scan sees
        // content that no longer matches its checksum. Block and footer
        // checksums are computed over the (possibly damaged) stored
        // records, mirroring a trailer written from the same buffer the
        // media tore — record-level checksums carry the detection.
        if let Some(plan) = device.fault_plan() {
            for (_, entry) in entries.iter_mut() {
                let payload = entry.value.as_ref().map_or(0, Value::len);
                match plan.roll_corruption(FaultTier::Flash, self.partition, payload) {
                    Some(InjectedFault::BitFlip { byte, bit }) => match &entry.value {
                        Some(v) if !v.is_empty() => {
                            let mut bytes = v.as_bytes().to_vec();
                            let idx = byte % bytes.len();
                            bytes[idx] ^= 1 << bit;
                            entry.value = Some(Value::from_vec(bytes));
                        }
                        _ => entry.checksum ^= 1,
                    },
                    Some(InjectedFault::TornWrite { keep }) => match &entry.value {
                        Some(v) if !v.is_empty() => {
                            let keep = keep.min(v.len() - 1);
                            entry.value = Some(Value::from_vec(v.as_bytes()[..keep].to_vec()));
                        }
                        _ => entry.checksum ^= 1,
                    },
                    _ => {}
                }
            }
        }

        let mut blocks = Vec::new();
        let mut block_start = 0usize;
        let mut block_bytes = 0u64;
        let mut bloom = BloomFilter::new(entries.len(), 10);
        for (i, (key, entry)) in entries.iter().enumerate() {
            bloom.add(key);
            let sz = entry.encoded_size(key) as u64;
            if block_bytes + sz > BLOCK_SIZE as u64 && i > block_start {
                let slice = &entries[block_start..i];
                blocks.push(BlockMeta {
                    first_key: entries[block_start].0.clone(),
                    start: block_start,
                    len: i - block_start,
                    bytes: block_bytes,
                    checksum: SstFile::compute_block_checksum(slice),
                });
                block_start = i;
                block_bytes = 0;
            }
            block_bytes += sz;
        }
        let tail = &entries[block_start..];
        blocks.push(BlockMeta {
            first_key: entries[block_start].0.clone(),
            start: block_start,
            len: entries.len() - block_start,
            bytes: block_bytes,
            checksum: SstFile::compute_block_checksum(tail),
        });
        let total_bytes = self.bytes;
        let footer_checksum = SstFile::compute_footer_checksum(self.id, total_bytes, &blocks);
        let min_key = entries[0].0.clone();
        let max_key = entries[entries.len() - 1].0.clone();
        let cost = device.write_sequential(total_bytes);
        device.allocate(total_bytes);
        (
            SstFile {
                id: self.id,
                entries,
                blocks,
                bloom,
                total_bytes,
                min_key,
                max_key,
                footer_checksum,
            },
            cost,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_storage::DeviceProfile;

    fn flash() -> Arc<Device> {
        Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)))
    }

    fn build_file(ids: &[u64]) -> SstFile {
        let dev = flash();
        let mut b = SstBuilder::new(1);
        for &id in ids {
            b.add(
                Key::from_id(id),
                SstEntry::value(Value::filled(100, id as u8), id),
            );
        }
        b.finish(&dev).0
    }

    #[test]
    fn probe_finds_present_and_rejects_absent() {
        let ids: Vec<u64> = (0..500).map(|i| i * 2).collect();
        let sst = build_file(&ids);
        assert_eq!(sst.len(), 500);
        assert_eq!(sst.min_key().id(), 0);
        assert_eq!(sst.max_key().id(), 998);
        let hit = sst.probe(&Key::from_id(424));
        assert!(hit.entry.is_some());
        assert!(hit.data_block_bytes > 0);
        let miss = sst.probe(&Key::from_id(423));
        assert!(miss.entry.is_none());
    }

    #[test]
    fn bloom_avoids_block_reads_for_most_absent_keys() {
        let ids: Vec<u64> = (0..2000).collect();
        let sst = build_file(&ids);
        let mut skipped = 0;
        let mut total = 0;
        for id in 10_000..12_000u64 {
            total += 1;
            if !sst.probe(&Key::from_id(id)).may_contain {
                skipped += 1;
            }
        }
        assert!(
            skipped as f64 / total as f64 > 0.95,
            "bloom should reject most absent keys, rejected {skipped}/{total}"
        );
    }

    #[test]
    fn blocks_are_about_4k() {
        let ids: Vec<u64> = (0..1000).collect();
        let sst = build_file(&ids);
        // 100-byte values + overhead: roughly 30+ entries per 4 KB block.
        let blocks = sst.size_bytes() / BLOCK_SIZE as u64;
        let probe = sst.probe(&Key::from_id(500));
        assert!(probe.data_block_bytes <= BLOCK_SIZE as u64 + 200);
        assert!(blocks >= 20, "expected many blocks, got {blocks}");
    }

    #[test]
    fn range_and_count() {
        let ids: Vec<u64> = (0..100).map(|i| i * 10).collect();
        let sst = build_file(&ids);
        let in_range: Vec<u64> = sst
            .range(&Key::from_id(95), &Key::from_id(250))
            .map(|(k, _)| k.id())
            .collect();
        assert_eq!(
            in_range,
            vec![100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250]
        );
        assert_eq!(
            sst.count_in_range(&Key::from_id(95), &Key::from_id(250)),
            in_range.len()
        );
        assert!(sst.covers(&Key::from_id(500)));
        assert!(!sst.covers(&Key::from_id(5000)));
        assert!(sst.overlaps(&Key::from_id(900), &Key::from_id(2000)));
        assert!(!sst.overlaps(&Key::from_id(1000), &Key::from_id(2000)));
    }

    #[test]
    fn tombstones_round_trip() {
        let dev = flash();
        let mut b = SstBuilder::new(3);
        b.add(Key::from_id(1), SstEntry::value(Value::filled(10, 0), 5));
        b.add(Key::from_id(2), SstEntry::tombstone(6));
        let (sst, _) = b.finish(&dev);
        assert!(!sst.probe(&Key::from_id(1)).entry.unwrap().is_tombstone());
        assert!(sst.probe(&Key::from_id(2)).entry.unwrap().is_tombstone());
    }

    #[test]
    fn finish_charges_sequential_write_and_allocates() {
        let dev = flash();
        let mut b = SstBuilder::new(9);
        for id in 0..100u64 {
            b.add(
                Key::from_id(id),
                SstEntry::value(Value::filled(1000, 0), id),
            );
        }
        let expected_bytes = b.size_bytes();
        let (sst, cost) = b.finish(&dev);
        assert_eq!(sst.size_bytes(), expected_bytes);
        assert!(cost > Nanos::ZERO);
        assert_eq!(dev.counters().as_tier_io().bytes_written, expected_bytes);
        assert_eq!(dev.used_bytes(), expected_bytes);
        assert!(sst.metadata_bytes() > 0);
    }

    #[test]
    fn clean_files_pass_integrity_and_probe_uncorrupted() {
        let sst = build_file(&(0..300).collect::<Vec<_>>());
        assert!(sst.verify_integrity());
        assert!(sst.corrupt_keys().is_empty());
        let probe = sst.probe(&Key::from_id(123));
        assert!(!probe.corrupt);
        assert!(probe.entry.unwrap().verify());
    }

    #[test]
    fn injected_bit_flip_is_withheld_by_probe_and_listed() {
        use prism_storage::{FaultMode, FaultOp, FaultPlan, FaultTier, TargetedFault};

        let plan = Arc::new(FaultPlan::new(77));
        let dev = Arc::new(Device::with_faults(
            DeviceProfile::qlc_flash(1 << 30),
            plan.clone(),
            FaultTier::Flash,
        ));
        plan.arm(TargetedFault {
            tier: FaultTier::Flash,
            partition: Some(4),
            op: FaultOp::Write,
            mode: FaultMode::BitFlip,
        });
        let mut b = SstBuilder::new(8).for_partition(4);
        for id in 0..50u64 {
            b.add(Key::from_id(id), SstEntry::value(Value::filled(120, 7), id));
        }
        let (sst, _) = b.finish(&dev);
        assert_eq!(plan.snapshot().bit_flips, 1);

        let corrupt = sst.corrupt_keys();
        assert_eq!(corrupt.len(), 1, "exactly one record was damaged");
        assert!(!sst.verify_integrity());

        let probe = sst.probe(&corrupt[0]);
        assert!(probe.corrupt, "probe must flag the damaged record");
        assert!(probe.entry.is_none(), "corrupt bytes are never served");
        // Every other record still probes clean.
        let clean_hits = (0..50u64)
            .map(Key::from_id)
            .filter(|k| *k != corrupt[0])
            .filter(|k| {
                let p = sst.probe(k);
                !p.corrupt && p.entry.is_some()
            })
            .count();
        assert_eq!(clean_hits, 49);
    }

    #[test]
    fn entry_checksums_catch_every_single_bit_flip() {
        let entry = SstEntry::value(Value::filled(32, 0xC3), 9);
        for byte in 0..32 {
            for bit in 0..8 {
                let mut bytes = entry.value.as_ref().unwrap().as_bytes().to_vec();
                bytes[byte] ^= 1 << bit;
                let damaged = SstEntry {
                    value: Some(Value::from_vec(bytes)),
                    ..entry.clone()
                };
                assert!(!damaged.verify(), "byte {byte} bit {bit} undetected");
            }
        }
        assert!(SstEntry::tombstone(4).verify());
    }

    #[test]
    #[should_panic(expected = "empty SST")]
    fn empty_builder_panics() {
        let dev = flash();
        let b = SstBuilder::new(1);
        let _ = b.finish(&dev);
    }
}
