//! The bucket map behind the approx-MSC metric (§6 of the paper).
//!
//! The key-id space is divided into fixed-width buckets (64 K keys each in
//! the paper, matching the average number of keys in an SST file). Every
//! bucket keeps four pieces of state: the number of NVM-resident keys, a
//! popularity bitmap, an NVM-residency bitmap and a flash-residency bitmap.
//! Puts, gets, tracker evictions, compactions and deletes update these in
//! `O(1)`, and a candidate range's statistics are estimated as a weighted
//! sum over the buckets it overlaps.

use std::collections::BTreeMap;

use crate::msc::RangeStats;

#[derive(Debug, Clone)]
struct Bucket {
    num_nvm_keys: u64,
    pop: Vec<u64>,
    nvm: Vec<u64>,
    flash: Vec<u64>,
}

impl Bucket {
    fn new(bucket_size: u64) -> Self {
        let words = (bucket_size as usize).div_ceil(64);
        Bucket {
            num_nvm_keys: 0,
            pop: vec![0; words],
            nvm: vec![0; words],
            flash: vec![0; words],
        }
    }

    fn set(bits: &mut [u64], offset: u64, value: bool) {
        let word = (offset / 64) as usize;
        let bit = offset % 64;
        if value {
            bits[word] |= 1 << bit;
        } else {
            bits[word] &= !(1 << bit);
        }
    }

    fn count(bits: &[u64]) -> u64 {
        bits.iter().map(|w| w.count_ones() as u64).sum()
    }

    fn count_and(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x & y).count_ones() as u64)
            .sum()
    }
}

/// Per-bucket approximate statistics over the key-id space.
///
/// See the module documentation; the public methods correspond one-to-one
/// to the events the paper's implementation hooks (puts, gets, tracker
/// evictions, compaction demotions/promotions and deletes).
#[derive(Debug, Clone)]
pub struct BucketMap {
    bucket_size: u64,
    buckets: BTreeMap<u64, Bucket>,
}

impl BucketMap {
    /// Create a bucket map with `bucket_size` keys per bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_size` is zero.
    pub fn new(bucket_size: u64) -> Self {
        assert!(bucket_size > 0, "bucket size must be non-zero");
        BucketMap {
            bucket_size,
            buckets: BTreeMap::new(),
        }
    }

    /// The configured bucket width in keys.
    pub fn bucket_size(&self) -> u64 {
        self.bucket_size
    }

    /// Number of buckets that have been touched.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_mut(&mut self, key_id: u64) -> (&mut Bucket, u64) {
        let idx = key_id / self.bucket_size;
        let offset = key_id % self.bucket_size;
        (
            self.buckets
                .entry(idx)
                .or_insert_with(|| Bucket::new(self.bucket_size)),
            offset,
        )
    }

    /// A key was written to NVM (fresh insert of this key on NVM).
    pub fn on_nvm_insert(&mut self, key_id: u64) {
        let (bucket, offset) = self.bucket_mut(key_id);
        bucket.num_nvm_keys += 1;
        Bucket::set(&mut bucket.nvm, offset, true);
    }

    /// A key left NVM (demoted by compaction or deleted).
    pub fn on_nvm_remove(&mut self, key_id: u64) {
        let (bucket, offset) = self.bucket_mut(key_id);
        bucket.num_nvm_keys = bucket.num_nvm_keys.saturating_sub(1);
        Bucket::set(&mut bucket.nvm, offset, false);
    }

    /// A key was read or updated (popular for approximation purposes).
    pub fn on_access(&mut self, key_id: u64) {
        let (bucket, offset) = self.bucket_mut(key_id);
        Bucket::set(&mut bucket.pop, offset, true);
    }

    /// A key was evicted from the tracker (no longer popular).
    pub fn on_tracker_evict(&mut self, key_id: u64) {
        let (bucket, offset) = self.bucket_mut(key_id);
        Bucket::set(&mut bucket.pop, offset, false);
    }

    /// A version of this key now exists on flash (written by compaction).
    pub fn on_flash_insert(&mut self, key_id: u64) {
        let (bucket, offset) = self.bucket_mut(key_id);
        Bucket::set(&mut bucket.flash, offset, true);
    }

    /// No version of this key remains on flash (deleted or fully promoted).
    pub fn on_flash_remove(&mut self, key_id: u64) {
        let (bucket, offset) = self.bucket_mut(key_id);
        Bucket::set(&mut bucket.flash, offset, false);
    }

    /// Estimate how many popular objects live *only* on flash in the range
    /// `[start_id, end_id]` — the quantity promotion-oriented compactions
    /// maximise when choosing a range (§5.3 of the paper).
    pub fn popular_flash_only_objects(&self, start_id: u64, end_id: u64) -> f64 {
        if end_id < start_id {
            return 0.0;
        }
        let first_bucket = start_id / self.bucket_size;
        let last_bucket = end_id / self.bucket_size;
        let mut total = 0.0;
        for (idx, bucket) in self.buckets.range(first_bucket..=last_bucket) {
            let bucket_start = idx * self.bucket_size;
            let bucket_end = bucket_start + self.bucket_size - 1;
            let overlap_start = start_id.max(bucket_start);
            let overlap_end = end_id.min(bucket_end);
            let weight = (overlap_end - overlap_start + 1) as f64 / self.bucket_size as f64;
            let count: u64 = bucket
                .pop
                .iter()
                .zip(bucket.flash.iter())
                .zip(bucket.nvm.iter())
                .map(|((p, f), n)| (p & f & !n).count_ones() as u64)
                .sum();
            total += weight * count as f64;
        }
        total
    }

    /// Estimate the statistics of the candidate range `[start_id, end_id]`
    /// (inclusive). `avg_coldness_of_popular` is the coldness assigned to
    /// popular keys (cold keys always count 1.0); the engine passes the
    /// value implied by the current pinning threshold, or simply 0.25
    /// (clock 3).
    pub fn estimate(&self, start_id: u64, end_id: u64, avg_coldness_of_popular: f64) -> RangeStats {
        if end_id < start_id {
            return RangeStats::empty();
        }
        let first_bucket = start_id / self.bucket_size;
        let last_bucket = end_id / self.bucket_size;

        let mut nvm_objects = 0.0;
        let mut flash_objects = 0.0;
        let mut popular_nvm = 0.0;
        let mut overlapping = 0.0;

        for (idx, bucket) in self.buckets.range(first_bucket..=last_bucket) {
            let bucket_start = idx * self.bucket_size;
            let bucket_end = bucket_start + self.bucket_size - 1;
            let overlap_start = start_id.max(bucket_start);
            let overlap_end = end_id.min(bucket_end);
            let weight = (overlap_end - overlap_start + 1) as f64 / self.bucket_size as f64;

            let nvm_keys = Bucket::count(&bucket.nvm) as f64;
            let flash_keys = Bucket::count(&bucket.flash) as f64;
            let popular_and_nvm = Bucket::count_and(&bucket.pop, &bucket.nvm) as f64;
            let nvm_and_flash = Bucket::count_and(&bucket.nvm, &bucket.flash) as f64;

            nvm_objects += weight * nvm_keys;
            flash_objects += weight * flash_keys;
            popular_nvm += weight * popular_and_nvm;
            overlapping += weight * nvm_and_flash;
        }

        if nvm_objects <= 0.0 {
            return RangeStats::empty();
        }
        let cold_nvm = (nvm_objects - popular_nvm).max(0.0);
        let benefit = cold_nvm + popular_nvm * avg_coldness_of_popular.clamp(0.0, 1.0);
        RangeStats {
            nvm_objects,
            flash_objects,
            benefit,
            popular_fraction: (popular_nvm / nvm_objects).clamp(0.0, 1.0),
            overlap_fraction: if flash_objects > 0.0 {
                (overlapping / flash_objects).clamp(0.0, 1.0)
            } else {
                0.0
            },
            fanout: flash_objects / nvm_objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msc::msc_score;

    #[test]
    fn insert_remove_population() {
        let mut b = BucketMap::new(100);
        for id in 0..250u64 {
            b.on_nvm_insert(id);
        }
        assert_eq!(b.bucket_count(), 3);
        let all = b.estimate(0, 299, 0.25);
        assert!((all.nvm_objects - 250.0).abs() < 1e-6);
        for id in 0..50u64 {
            b.on_nvm_remove(id);
        }
        let all = b.estimate(0, 299, 0.25);
        assert!((all.nvm_objects - 200.0).abs() < 1e-6);
    }

    #[test]
    fn popularity_and_overlap_fractions() {
        let mut b = BucketMap::new(100);
        for id in 0..100u64 {
            b.on_nvm_insert(id);
        }
        for id in 0..25u64 {
            b.on_access(id);
        }
        for id in 50..150u64 {
            b.on_flash_insert(id);
        }
        let stats = b.estimate(0, 99, 0.25);
        assert!((stats.popular_fraction - 0.25).abs() < 1e-6);
        // 100 flash keys in bucket 0..100? only ids 50..100 fall in bucket 0,
        // the rest land in bucket 1 which is outside the estimate range... but
        // bucket-level weighting counts the whole bucket contents scaled by
        // range overlap; range [0,99] covers bucket 0 fully.
        assert!((stats.flash_objects - 50.0).abs() < 1e-6);
        // All 50 flash keys in bucket 0 are also on NVM.
        assert!((stats.overlap_fraction - 1.0).abs() < 1e-6);
        assert!((stats.fanout - 0.5).abs() < 1e-6);
    }

    #[test]
    fn partial_bucket_overlap_uses_weights() {
        // Reproduces the paper's Figure 8 example: bucket size 100, range
        // [25, 125]: 75% of bucket 0 and 25% of bucket 1 (inclusive ends
        // shift the numbers slightly; we check the weighting logic).
        let mut b = BucketMap::new(100);
        for id in 0..200u64 {
            b.on_nvm_insert(id);
        }
        let stats = b.estimate(25, 124, 0.25);
        // weight 0.75 * 100 + 0.25 * 100 = 100 keys estimated.
        assert!((stats.nvm_objects - 100.0).abs() < 1e-6);
    }

    #[test]
    fn tracker_eviction_cools_keys() {
        let mut b = BucketMap::new(64);
        for id in 0..64u64 {
            b.on_nvm_insert(id);
            b.on_access(id);
        }
        let hot = b.estimate(0, 63, 0.25);
        for id in 0..64u64 {
            b.on_tracker_evict(id);
        }
        let cooled = b.estimate(0, 63, 0.25);
        assert!(cooled.benefit > hot.benefit);
        assert!(msc_score(&cooled) > msc_score(&hot));
    }

    #[test]
    fn flash_remove_clears_overlap() {
        let mut b = BucketMap::new(64);
        b.on_nvm_insert(5);
        b.on_flash_insert(5);
        assert!((b.estimate(0, 63, 0.25).overlap_fraction - 1.0).abs() < 1e-6);
        b.on_flash_remove(5);
        assert_eq!(b.estimate(0, 63, 0.25).overlap_fraction, 0.0);
    }

    #[test]
    fn popular_flash_only_counts_promotion_candidates() {
        let mut b = BucketMap::new(64);
        // Keys 0..10 are popular and on flash only: promotion candidates.
        for id in 0..10u64 {
            b.on_flash_insert(id);
            b.on_access(id);
        }
        // Keys 10..20 are popular but already on NVM.
        for id in 10..20u64 {
            b.on_nvm_insert(id);
            b.on_access(id);
        }
        // Keys 20..30 are on flash but cold.
        for id in 20..30u64 {
            b.on_flash_insert(id);
        }
        assert!((b.popular_flash_only_objects(0, 63) - 10.0).abs() < 1e-6);
        assert_eq!(b.popular_flash_only_objects(63, 0), 0.0);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let b = BucketMap::new(128);
        assert_eq!(b.estimate(0, 1000, 0.25), RangeStats::empty());
        let mut b = BucketMap::new(128);
        b.on_nvm_insert(1);
        assert_eq!(b.estimate(500, 100, 0.25), RangeStats::empty());
    }

    #[test]
    #[should_panic(expected = "bucket size")]
    fn zero_bucket_size_panics() {
        let _ = BucketMap::new(0);
    }
}
