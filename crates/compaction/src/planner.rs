//! Compaction policy configuration and candidate selection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prism_types::{PrismError, Result};

/// Which range-selection policy to use (Figure 6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompactionPolicy {
    /// Pick a random candidate range (the strawman baseline).
    Random,
    /// Score every object in each candidate range exactly. Lowest flash
    /// I/O, but CPU-expensive (long compaction pauses).
    PreciseMsc,
    /// Score candidate ranges from per-bucket statistics. Nearly the same
    /// flash I/O as precise-MSC at a fraction of the CPU cost; the default.
    ApproxMsc,
}

/// Configuration of the compaction planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionConfig {
    /// Range-selection policy.
    pub policy: CompactionPolicy,
    /// Number of candidate ranges sampled per compaction (power-of-k
    /// choices; the paper uses k = 8).
    pub k_candidates: usize,
    /// Width of a compaction key range in consecutive SST files (the
    /// paper's `i`, default 1).
    pub range_width_files: usize,
    /// Keys per bucket for the approx-MSC bucket map (64 K in the paper).
    pub bucket_size_keys: u64,
    /// Random seed for candidate sampling and threshold sampling, so runs
    /// are reproducible.
    pub seed: u64,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            policy: CompactionPolicy::ApproxMsc,
            k_candidates: 8,
            range_width_files: 1,
            bucket_size_keys: 65_536,
            seed: 0x5eed,
        }
    }
}

impl CompactionConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] when any count is zero.
    pub fn validate(&self) -> Result<()> {
        if self.k_candidates == 0 {
            return Err(PrismError::InvalidConfig(
                "compaction needs at least one candidate".into(),
            ));
        }
        if self.range_width_files == 0 {
            return Err(PrismError::InvalidConfig(
                "compaction range width must be at least one file".into(),
            ));
        }
        if self.bucket_size_keys == 0 {
            return Err(PrismError::InvalidConfig(
                "bucket size must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

/// Samples candidate ranges and picks the winner according to the policy.
#[derive(Debug)]
pub struct CompactionPlanner {
    config: CompactionConfig,
    rng: StdRng,
}

impl CompactionPlanner {
    /// Create a planner.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: CompactionConfig) -> Result<Self> {
        config.validate()?;
        Ok(CompactionPlanner {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        })
    }

    /// The planner's configuration.
    pub fn config(&self) -> &CompactionConfig {
        &self.config
    }

    /// A uniform random draw in `[0, 1)`, used to resolve probabilistic
    /// pinning decisions deterministically from the planner's seed.
    pub fn draw(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Sample up to `k_candidates` distinct candidate indices out of
    /// `num_ranges` possible ranges (power-of-k choices). With the random
    /// policy only a single index is sampled.
    pub fn pick_candidate_indices(&mut self, num_ranges: usize) -> Vec<usize> {
        if num_ranges == 0 {
            return Vec::new();
        }
        let want = match self.config.policy {
            CompactionPolicy::Random => 1,
            _ => self.config.k_candidates.min(num_ranges),
        };
        if want >= num_ranges {
            return (0..num_ranges).collect();
        }
        let mut picked = Vec::with_capacity(want);
        while picked.len() < want {
            let idx = self.rng.gen_range(0..num_ranges);
            if !picked.contains(&idx) {
                picked.push(idx);
            }
        }
        picked
    }

    /// Choose the winning candidate from `(index, score)` pairs: the highest
    /// score for the MSC policies, the first candidate for the random
    /// policy. Returns `None` when the list is empty or every score is zero
    /// under an MSC policy (nothing worth compacting).
    pub fn select_best(&self, scored: &[(usize, f64)]) -> Option<usize> {
        if scored.is_empty() {
            return None;
        }
        match self.config.policy {
            CompactionPolicy::Random => Some(scored[0].0),
            _ => scored
                .iter()
                .filter(|(_, score)| *score > 0.0)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
                .map(|(idx, _)| *idx)
                .or(Some(scored[0].0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_paper() {
        let config = CompactionConfig::default();
        config.validate().unwrap();
        assert_eq!(config.k_candidates, 8);
        assert_eq!(config.range_width_files, 1);
        assert_eq!(config.bucket_size_keys, 65_536);
        assert_eq!(config.policy, CompactionPolicy::ApproxMsc);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for bad in [
            CompactionConfig {
                k_candidates: 0,
                ..CompactionConfig::default()
            },
            CompactionConfig {
                range_width_files: 0,
                ..CompactionConfig::default()
            },
            CompactionConfig {
                bucket_size_keys: 0,
                ..CompactionConfig::default()
            },
        ] {
            assert!(CompactionPlanner::new(bad).is_err());
        }
    }

    #[test]
    fn power_of_k_sampling_is_bounded_and_distinct() {
        let mut planner = CompactionPlanner::new(CompactionConfig::default()).unwrap();
        let picked = planner.pick_candidate_indices(100);
        assert_eq!(picked.len(), 8);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), picked.len());
        assert!(picked.iter().all(|&i| i < 100));
        // Fewer ranges than k: all of them are candidates.
        assert_eq!(planner.pick_candidate_indices(3), vec![0, 1, 2]);
        assert!(planner.pick_candidate_indices(0).is_empty());
    }

    #[test]
    fn random_policy_samples_one_candidate() {
        let config = CompactionConfig {
            policy: CompactionPolicy::Random,
            ..CompactionConfig::default()
        };
        let mut planner = CompactionPlanner::new(config).unwrap();
        assert_eq!(planner.pick_candidate_indices(50).len(), 1);
    }

    #[test]
    fn select_best_prefers_highest_score() {
        let planner = CompactionPlanner::new(CompactionConfig::default()).unwrap();
        let scored = vec![(3, 0.5), (7, 2.5), (9, 1.0)];
        assert_eq!(planner.select_best(&scored), Some(7));
        assert_eq!(planner.select_best(&[]), None);
        // All-zero scores fall back to the first candidate so space can
        // still be reclaimed.
        assert_eq!(planner.select_best(&[(4, 0.0), (5, 0.0)]), Some(4));
    }

    #[test]
    fn random_policy_ignores_scores() {
        let config = CompactionConfig {
            policy: CompactionPolicy::Random,
            ..CompactionConfig::default()
        };
        let planner = CompactionPlanner::new(config).unwrap();
        assert_eq!(planner.select_best(&[(2, 0.0), (8, 9.9)]), Some(2));
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let mk = || CompactionPlanner::new(CompactionConfig::default()).unwrap();
        let a: Vec<usize> = mk().pick_candidate_indices(1000);
        let b: Vec<usize> = mk().pick_candidate_indices(1000);
        assert_eq!(a, b);
    }
}
