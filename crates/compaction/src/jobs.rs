//! Compaction jobs as plain `Send` values.
//!
//! Splitting a compaction into *plan → execute → install* lets the
//! expensive middle phase (reading the victim SST files and merge-sorting
//! them against the demoted NVM objects) run without holding the
//! partition's lock — on a dedicated background worker thread, or inline
//! for engines configured without workers. The phases are:
//!
//! 1. **Plan** (under the partition lock): pick the victim key range, clone
//!    out the NVM objects to demote (keys, timestamps *and values*),
//!    snapshot the overlapping SST files (`Arc` clones) and pre-compute
//!    promotion hints. The resulting [`CompactionJob`] owns everything it
//!    needs and is `Send`.
//! 2. **Execute** (no lock): [`execute_job`] merges the two sorted streams
//!    into a [`MergedEntry`] list, tagging each output entry with its
//!    origin so the installer can re-validate it, and charges the flash
//!    read plus merge CPU to the job's duration.
//! 3. **Install** (under the partition lock again): the engine re-checks
//!    each NVM-origin entry against the live index (a foreground write
//!    between plan and install invalidates that entry only), applies
//!    promotions, writes the output files and swaps them into the log.
//!    A partition-epoch mismatch (crash recovery, or an emergency inline
//!    compaction) discards the whole job, so a job's effects are all-or-
//!    nothing with respect to the partition's visible state.

use std::collections::HashSet;
use std::sync::Arc;

use prism_flash::{FileId, SstEntry, SstFile};
use prism_storage::{CpuCosts, Device};
use prism_types::{Key, Nanos};

/// What a compaction job is trying to achieve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Free NVM space by moving cold objects down to flash. `force`
    /// ignores popularity pins (emergency space reclamation).
    Demotion {
        /// Demote everything in range, ignoring pins.
        force: bool,
    },
    /// Pull popular flash-only objects up to NVM (read-triggered).
    Promotion,
}

/// One NVM object selected for demotion, cloned out under the partition
/// lock so the merge can run without it.
#[derive(Debug, Clone)]
pub struct DemoteEntry {
    /// The object's key.
    pub key: Key,
    /// Logical timestamp of the NVM version at plan time. The installer
    /// only removes the NVM object if the live index still carries exactly
    /// this timestamp.
    pub timestamp: u64,
    /// True if the NVM version is a delete tombstone.
    pub tombstone: bool,
    /// The value (cloned at plan time); `None` for tombstones.
    pub value: Option<Value>,
}

use prism_types::Value;

/// A planned compaction, self-contained and `Send`.
#[derive(Debug, Clone)]
pub struct CompactionJob {
    /// Partition the job belongs to.
    pub partition: usize,
    /// Partition compaction epoch at plan time; install discards the job
    /// if the epoch moved (crash recovery or an emergency inline
    /// compaction rewrote state underneath it).
    pub epoch: u64,
    /// What the job does.
    pub kind: JobKind,
    /// Foreground virtual time at which the job was triggered; background
    /// schedulers use it as the earliest virtual start time.
    pub trigger_fg: Nanos,
    /// NVM objects to demote (cloned under the lock), in key order.
    pub demote: Vec<DemoteEntry>,
    /// The overlapping SST files being rewritten.
    pub files: Vec<Arc<SstFile>>,
    /// Key ids of flash-only objects the planner decided to promote to
    /// NVM (popularity pin at plan time; capacity is re-checked at
    /// install).
    pub promote_hints: HashSet<u64>,
    /// CPU time spent scoring candidate ranges for this job.
    pub planning_cost: Nanos,
}

/// Where a merged output entry came from — the installer re-validates
/// NVM-origin entries against the live index before writing them out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergedOrigin {
    /// Demoted from NVM; valid only while the index still holds this
    /// timestamp for the key.
    Nvm {
        /// Timestamp of the demoted version.
        timestamp: u64,
    },
    /// Carried over (or promoted) from the victim flash files.
    Flash {
        /// The planner flagged this object for promotion to NVM.
        promote: bool,
    },
}

/// One entry of the merged output stream.
#[derive(Debug, Clone)]
pub struct MergedEntry {
    /// The key.
    pub key: Key,
    /// The surviving version.
    pub entry: SstEntry,
    /// Provenance, for install-time revalidation.
    pub origin: MergedOrigin,
}

/// The result of executing a [`CompactionJob`] outside the partition lock.
#[derive(Debug, Clone)]
pub struct ExecutedJob {
    /// Partition the job belongs to.
    pub partition: usize,
    /// Epoch copied from the job (checked at install).
    pub epoch: u64,
    /// What the job did.
    pub kind: JobKind,
    /// Earliest virtual start time (from the job).
    pub trigger_fg: Nanos,
    /// Ids of the victim files to retire at install.
    pub old_file_ids: Vec<FileId>,
    /// Planned demotions (metadata only; values live in `merged`). The
    /// installer removes each from NVM only if its timestamp still
    /// matches the live index.
    pub demote: Vec<(Key, u64, bool)>,
    /// Merged output in key order.
    pub merged: Vec<MergedEntry>,
    /// Key ids whose flash version was dropped by the merge (tombstones
    /// merged away, stale versions superseded).
    pub removed_from_flash: Vec<u64>,
    /// Simulated time consumed so far (planning + flash read + merge CPU);
    /// the installer adds promotion writes and output-file writes.
    pub duration: Nanos,
    /// Portion of `duration` spent on the flash device.
    pub flash_time: Nanos,
}

/// Merge the job's demotion stream against its flash files. Pure with
/// respect to the owning partition: only the simulated flash device's
/// read counters are touched, so a discarded job leaves partition state
/// untouched.
pub fn execute_job(job: CompactionJob, cpu: &CpuCosts, flash_dev: &Arc<Device>) -> ExecutedJob {
    let mut duration = job.planning_cost;
    let mut flash_time = Nanos::ZERO;

    let flash_bytes: u64 = job.files.iter().map(|f| f.size_bytes()).sum();
    if flash_bytes > 0 {
        let t = flash_dev.read_sequential(flash_bytes);
        duration += t;
        flash_time += t;
    }
    let flash_entries: Vec<(Key, SstEntry)> = job
        .files
        .iter()
        .flat_map(|f| f.iter().map(|(k, e)| (k.clone(), e.clone())))
        .collect();

    duration += cpu.merge_per_object * (job.demote.len() as u64 + flash_entries.len() as u64);

    let mut merged: Vec<MergedEntry> = Vec::new();
    let mut removed_from_flash: Vec<u64> = Vec::new();
    let mut di = 0usize;
    let mut fi = 0usize;
    while di < job.demote.len() || fi < flash_entries.len() {
        let take_nvm = match (job.demote.get(di), flash_entries.get(fi)) {
            (Some(d), Some((fk, _))) => d.key <= *fk,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_nvm {
            let d = &job.demote[di];
            di += 1;
            if flash_entries.get(fi).map(|(fk, _)| fk == &d.key) == Some(true) {
                // The flash version is stale: drop it by advancing past it.
                fi += 1;
            }
            if d.tombstone {
                // Key is deleted everywhere once the merge completes.
                removed_from_flash.push(d.key.id());
            } else if let Some(value) = &d.value {
                merged.push(MergedEntry {
                    key: d.key.clone(),
                    entry: SstEntry::value(value.clone(), d.timestamp),
                    origin: MergedOrigin::Nvm {
                        timestamp: d.timestamp,
                    },
                });
            }
        } else {
            let (key, entry) = &flash_entries[fi];
            fi += 1;
            if entry.is_tombstone() {
                // Single-level log: a tombstone with no newer version can
                // be dropped entirely.
                removed_from_flash.push(key.id());
                continue;
            }
            merged.push(MergedEntry {
                key: key.clone(),
                entry: entry.clone(),
                origin: MergedOrigin::Flash {
                    promote: job.promote_hints.contains(&key.id()),
                },
            });
        }
    }

    ExecutedJob {
        partition: job.partition,
        epoch: job.epoch,
        kind: job.kind,
        trigger_fg: job.trigger_fg,
        old_file_ids: job.files.iter().map(|f| f.id()).collect(),
        demote: job
            .demote
            .iter()
            .map(|d| (d.key.clone(), d.timestamp, d.tombstone))
            .collect(),
        merged,
        removed_from_flash,
        duration,
        flash_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_flash::SstBuilder;
    use prism_storage::DeviceProfile;

    fn flash() -> Arc<Device> {
        Arc::new(Device::new(DeviceProfile::qlc_flash(1 << 30)))
    }

    fn file(entries: &[(u64, Option<u8>)], id: FileId, dev: &Arc<Device>) -> Arc<SstFile> {
        let mut builder = SstBuilder::new(id);
        for (kid, fill) in entries {
            let entry = match fill {
                Some(f) => SstEntry::value(Value::filled(64, *f), 1),
                None => SstEntry::tombstone(1),
            };
            builder.add(Key::from_id(*kid), entry);
        }
        let (sst, _) = builder.finish(dev);
        Arc::new(sst)
    }

    fn demote(kid: u64, ts: u64, fill: Option<u8>) -> DemoteEntry {
        DemoteEntry {
            key: Key::from_id(kid),
            timestamp: ts,
            tombstone: fill.is_none(),
            value: fill.map(|f| Value::filled(64, f)),
        }
    }

    fn job(demote: Vec<DemoteEntry>, files: Vec<Arc<SstFile>>) -> CompactionJob {
        CompactionJob {
            partition: 0,
            epoch: 0,
            kind: JobKind::Demotion { force: false },
            trigger_fg: Nanos::ZERO,
            demote,
            files,
            promote_hints: HashSet::new(),
            planning_cost: Nanos::ZERO,
        }
    }

    #[test]
    fn merge_prefers_nvm_versions_and_drops_tombstones() {
        let dev = flash();
        // Flash: 1 (stale value), 2 (tombstone), 4 (live value).
        let f = file(&[(1, Some(9)), (2, None), (4, Some(4))], 1, &dev);
        // NVM: newer 1, tombstone for 4, fresh 3.
        let d = vec![
            demote(1, 7, Some(1)),
            demote(3, 8, Some(3)),
            demote(4, 9, None),
        ];
        let exec = execute_job(job(d, vec![f]), &CpuCosts::default(), &dev);

        let keys: Vec<u64> = exec.merged.iter().map(|m| m.key.id()).collect();
        assert_eq!(keys, vec![1, 3], "stale flash 1 dropped, 4 deleted, 2 gc'd");
        assert!(matches!(
            exec.merged[0].origin,
            MergedOrigin::Nvm { timestamp: 7 }
        ));
        assert_eq!(
            exec.merged[0].entry.value.as_ref().unwrap().as_bytes()[0],
            1
        );
        // Tombstone-only flash key 2 and tombstoned key 4 leave the flash
        // population.
        let mut removed = exec.removed_from_flash.clone();
        removed.sort_unstable();
        assert_eq!(removed, vec![2, 4]);
        assert!(exec.duration > Nanos::ZERO);
        assert!(exec.flash_time > Nanos::ZERO);
        assert_eq!(exec.old_file_ids, vec![1]);
    }

    #[test]
    fn promote_hints_are_tagged_on_flash_survivors() {
        let dev = flash();
        let f = file(&[(10, Some(1)), (11, Some(2))], 2, &dev);
        let mut j = job(Vec::new(), vec![f]);
        j.promote_hints.insert(11);
        let exec = execute_job(j, &CpuCosts::default(), &dev);
        assert_eq!(exec.merged.len(), 2);
        assert_eq!(
            exec.merged[0].origin,
            MergedOrigin::Flash { promote: false }
        );
        assert_eq!(exec.merged[1].origin, MergedOrigin::Flash { promote: true });
    }

    #[test]
    fn jobs_are_send_values() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<CompactionJob>();
        assert_send::<ExecutedJob>();
    }
}
