//! The MSC cost-benefit metric (Equation 1 of the paper).

/// Statistics describing one candidate compaction key range.
///
/// These can be computed exactly ([`RangeStatsBuilder`], used by the
/// precise-MSC policy) or approximately from bucket counters
/// ([`crate::BucketMap::estimate`], used by approx-MSC).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeStats {
    /// Number of NVM objects in the range (`t_n`).
    pub nvm_objects: f64,
    /// Number of flash objects in the overlapping SST files (`t_f`).
    pub flash_objects: f64,
    /// Sum of coldness scores of the NVM objects (the benefit term).
    pub benefit: f64,
    /// Fraction of NVM objects that are popular / pinned (`p`).
    pub popular_fraction: f64,
    /// Fraction of flash objects that also appear in the NVM range (`o`).
    pub overlap_fraction: f64,
    /// Fanout `F = t_f / t_n`.
    pub fanout: f64,
}

impl RangeStats {
    /// An empty range (scores zero).
    pub fn empty() -> Self {
        RangeStats {
            nvm_objects: 0.0,
            flash_objects: 0.0,
            benefit: 0.0,
            popular_fraction: 0.0,
            overlap_fraction: 0.0,
            fanout: 0.0,
        }
    }

    /// The flash I/O cost per migrated object: `F · (2 − o) / (1 − p) + 1`.
    ///
    /// Returns `f64::INFINITY` when nothing can be migrated (every object
    /// in the range is popular).
    pub fn cost(&self) -> f64 {
        let unpopular = 1.0 - self.popular_fraction;
        if unpopular <= f64::EPSILON {
            return f64::INFINITY;
        }
        self.fanout * (2.0 - self.overlap_fraction) / unpopular + 1.0
    }
}

/// The multi-tiered storage compaction score: benefit / cost.
///
/// Higher scores identify ranges that free more cold data per unit of flash
/// I/O. Empty or fully-popular ranges score zero.
pub fn msc_score(stats: &RangeStats) -> f64 {
    if stats.nvm_objects <= 0.0 || stats.benefit <= 0.0 {
        return 0.0;
    }
    let cost = stats.cost();
    if !cost.is_finite() {
        return 0.0;
    }
    stats.benefit / cost
}

/// Coldness of an object given its clock value (`None` = untracked).
///
/// `coldness = 1 / (clock + 1)`; untracked objects are maximally cold.
pub fn coldness(clock: Option<u8>) -> f64 {
    match clock {
        Some(c) => 1.0 / (c as f64 + 1.0),
        None => 1.0,
    }
}

/// Incrementally builds exact [`RangeStats`] for the precise-MSC policy by
/// walking every object in a candidate range.
#[derive(Debug, Default, Clone)]
pub struct RangeStatsBuilder {
    nvm_objects: u64,
    popular_objects: u64,
    benefit: f64,
    flash_objects: u64,
    overlapping_flash_objects: u64,
}

impl RangeStatsBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one NVM object with its clock value and whether the pinning
    /// threshold would keep it on NVM.
    pub fn add_nvm_object(&mut self, clock: Option<u8>, pinned: bool) {
        self.nvm_objects += 1;
        if pinned {
            self.popular_objects += 1;
        }
        self.benefit += coldness(clock);
    }

    /// Record one flash object in the overlapping SST files, and whether the
    /// same key also exists in the NVM range.
    pub fn add_flash_object(&mut self, overlaps_nvm: bool) {
        self.flash_objects += 1;
        if overlaps_nvm {
            self.overlapping_flash_objects += 1;
        }
    }

    /// Number of objects walked so far (NVM + flash); the engine uses this
    /// to charge the CPU cost that makes precise-MSC slow.
    pub fn objects_examined(&self) -> u64 {
        self.nvm_objects + self.flash_objects
    }

    /// Finish and produce the statistics.
    pub fn build(self) -> RangeStats {
        let nvm = self.nvm_objects as f64;
        let flash = self.flash_objects as f64;
        RangeStats {
            nvm_objects: nvm,
            flash_objects: flash,
            benefit: self.benefit,
            popular_fraction: if nvm > 0.0 {
                self.popular_objects as f64 / nvm
            } else {
                0.0
            },
            overlap_fraction: if flash > 0.0 {
                self.overlapping_flash_objects as f64 / flash
            } else {
                0.0
            },
            fanout: if nvm > 0.0 { flash / nvm } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coldness_matches_paper_formula() {
        assert_eq!(coldness(Some(0)), 1.0);
        assert_eq!(coldness(Some(1)), 0.5);
        assert_eq!(coldness(Some(3)), 0.25);
        assert_eq!(coldness(None), 1.0);
    }

    #[test]
    fn cost_matches_paper_formula() {
        // F = 5, o = 0.5, p = 0.25 -> 5 * 1.5 / 0.75 + 1 = 11.
        let stats = RangeStats {
            nvm_objects: 100.0,
            flash_objects: 500.0,
            benefit: 80.0,
            popular_fraction: 0.25,
            overlap_fraction: 0.5,
            fanout: 5.0,
        };
        assert!((stats.cost() - 11.0).abs() < 1e-9);
        assert!((msc_score(&stats) - 80.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn fully_popular_range_scores_zero() {
        let stats = RangeStats {
            nvm_objects: 10.0,
            flash_objects: 50.0,
            benefit: 2.5,
            popular_fraction: 1.0,
            overlap_fraction: 0.0,
            fanout: 5.0,
        };
        assert!(stats.cost().is_infinite());
        assert_eq!(msc_score(&stats), 0.0);
    }

    #[test]
    fn empty_range_scores_zero() {
        assert_eq!(msc_score(&RangeStats::empty()), 0.0);
    }

    #[test]
    fn builder_produces_exact_fractions() {
        let mut b = RangeStatsBuilder::new();
        // 4 NVM objects: 1 pinned hot (clock 3), 3 cold untracked.
        b.add_nvm_object(Some(3), true);
        b.add_nvm_object(None, false);
        b.add_nvm_object(None, false);
        b.add_nvm_object(Some(0), false);
        // 8 flash objects, 2 overlapping.
        for i in 0..8 {
            b.add_flash_object(i < 2);
        }
        assert_eq!(b.objects_examined(), 12);
        let stats = b.build();
        assert!((stats.nvm_objects - 4.0).abs() < 1e-9);
        assert!((stats.flash_objects - 8.0).abs() < 1e-9);
        assert!((stats.popular_fraction - 0.25).abs() < 1e-9);
        assert!((stats.overlap_fraction - 0.25).abs() < 1e-9);
        assert!((stats.fanout - 2.0).abs() < 1e-9);
        assert!((stats.benefit - (0.25 + 1.0 + 1.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn score_prefers_low_fanout_ranges() {
        let narrow = RangeStats {
            nvm_objects: 100.0,
            flash_objects: 100.0,
            benefit: 60.0,
            popular_fraction: 0.3,
            overlap_fraction: 0.5,
            fanout: 1.0,
        };
        let wide = RangeStats {
            fanout: 10.0,
            flash_objects: 1000.0,
            ..narrow
        };
        assert!(msc_score(&narrow) > msc_score(&wide));
    }
}
