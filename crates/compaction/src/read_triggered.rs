//! Read-triggered compactions (§5.3 of the paper).
//!
//! Under read-heavy workloads NVM fills slowly, so write-triggered
//! compactions (and the promotions that piggyback on them) are too rare to
//! keep the hot set on NVM. The controller below watches the read mix: when
//! most reads hit flash and a large fraction of tracked keys live on flash,
//! it enables promotion compactions for an epoch, keeps them running while
//! the NVM read ratio keeps improving, and otherwise backs off for a
//! cool-down period.

/// Configuration of the read-triggered compaction controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadTriggerConfig {
    /// Length of one invocation epoch, in client operations (1 M in the
    /// paper).
    pub epoch_ops: u64,
    /// Minimum improvement of the NVM read ratio per epoch to keep going
    /// (1 % in the paper).
    pub improvement_threshold: f64,
    /// Cool-down length in client operations (10 M in the paper).
    pub cooldown_ops: u64,
    /// Number of operations observed per detection check.
    pub detection_window_ops: u64,
    /// Fraction of operations that must be reads for the workload to count
    /// as read-dominated.
    pub read_fraction_trigger: f64,
    /// Fraction of reads served from flash above which promotions are
    /// worthwhile.
    pub flash_read_fraction_trigger: f64,
}

impl Default for ReadTriggerConfig {
    fn default() -> Self {
        ReadTriggerConfig {
            epoch_ops: 1_000_000,
            improvement_threshold: 0.01,
            cooldown_ops: 10_000_000,
            detection_window_ops: 100_000,
            read_fraction_trigger: 0.8,
            flash_read_fraction_trigger: 0.2,
        }
    }
}

impl ReadTriggerConfig {
    /// A configuration scaled down by `factor` for small simulated
    /// databases (benchmarks use key counts far below the paper's 100 M).
    pub fn scaled_down(factor: u64) -> Self {
        let d = factor.max(1);
        let base = ReadTriggerConfig::default();
        ReadTriggerConfig {
            epoch_ops: (base.epoch_ops / d).max(100),
            cooldown_ops: (base.cooldown_ops / d).max(1_000),
            detection_window_ops: (base.detection_window_ops / d).max(50),
            ..base
        }
    }
}

/// The controller's current phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadTriggerPhase {
    /// Watching for a read-dominated, flash-bound workload.
    Detection,
    /// Promotion compactions are enabled; progress is monitored per epoch.
    Invocation,
    /// Promotions paused after an epoch with insufficient improvement.
    Cooldown,
}

#[derive(Debug, Default, Clone, Copy)]
struct WindowCounters {
    ops: u64,
    reads: u64,
    reads_from_flash: u64,
    reads_from_nvm: u64,
}

impl WindowCounters {
    fn read_fraction(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.reads as f64 / self.ops as f64
        }
    }

    fn flash_read_fraction(&self) -> f64 {
        let total = self.reads_from_flash + self.reads_from_nvm;
        if total == 0 {
            0.0
        } else {
            self.reads_from_flash as f64 / total as f64
        }
    }

    fn nvm_read_ratio(&self) -> f64 {
        let total = self.reads_from_flash + self.reads_from_nvm;
        if total == 0 {
            1.0
        } else {
            self.reads_from_nvm as f64 / total as f64
        }
    }
}

/// State machine deciding when promotion compactions should run.
#[derive(Debug)]
pub struct ReadTriggeredController {
    config: ReadTriggerConfig,
    phase: ReadTriggerPhase,
    window: WindowCounters,
    previous_ratio: f64,
    cooldown_remaining: u64,
}

impl ReadTriggeredController {
    /// Create a controller in the detection phase.
    pub fn new(config: ReadTriggerConfig) -> Self {
        ReadTriggeredController {
            config,
            phase: ReadTriggerPhase::Detection,
            window: WindowCounters::default(),
            previous_ratio: 0.0,
            cooldown_remaining: 0,
        }
    }

    /// The current phase.
    pub fn phase(&self) -> ReadTriggerPhase {
        self.phase
    }

    /// True while promotion compactions should be triggered.
    pub fn promotions_enabled(&self) -> bool {
        self.phase == ReadTriggerPhase::Invocation
    }

    /// Record one client operation. `is_read` marks point reads;
    /// `from_flash` / `from_nvm` say where a read was served from (both
    /// false for cache hits and writes).
    pub fn observe_op(&mut self, is_read: bool, from_nvm: bool, from_flash: bool) {
        self.window.ops += 1;
        if is_read {
            self.window.reads += 1;
            if from_flash {
                self.window.reads_from_flash += 1;
            }
            if from_nvm {
                self.window.reads_from_nvm += 1;
            }
        }
        match self.phase {
            ReadTriggerPhase::Detection => {
                if self.window.ops >= self.config.detection_window_ops {
                    let read_heavy =
                        self.window.read_fraction() >= self.config.read_fraction_trigger;
                    let flash_bound = self.window.flash_read_fraction()
                        >= self.config.flash_read_fraction_trigger;
                    if read_heavy && flash_bound {
                        self.previous_ratio = self.window.nvm_read_ratio();
                        self.phase = ReadTriggerPhase::Invocation;
                    }
                    self.window = WindowCounters::default();
                }
            }
            ReadTriggerPhase::Invocation => {
                if self.window.ops >= self.config.epoch_ops {
                    let ratio = self.window.nvm_read_ratio();
                    let improved = ratio - self.previous_ratio >= self.config.improvement_threshold;
                    self.previous_ratio = ratio;
                    self.window = WindowCounters::default();
                    if !improved {
                        self.phase = ReadTriggerPhase::Cooldown;
                        self.cooldown_remaining = self.config.cooldown_ops;
                    }
                }
            }
            ReadTriggerPhase::Cooldown => {
                self.cooldown_remaining = self.cooldown_remaining.saturating_sub(1);
                if self.cooldown_remaining == 0 {
                    self.phase = ReadTriggerPhase::Detection;
                    self.window = WindowCounters::default();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ReadTriggerConfig {
        ReadTriggerConfig {
            epoch_ops: 100,
            improvement_threshold: 0.01,
            cooldown_ops: 200,
            detection_window_ops: 50,
            read_fraction_trigger: 0.8,
            flash_read_fraction_trigger: 0.2,
        }
    }

    #[test]
    fn write_heavy_workload_never_triggers() {
        let mut c = ReadTriggeredController::new(small_config());
        for i in 0..1_000 {
            // 50/50 read-write mix, reads from NVM.
            c.observe_op(i % 2 == 0, true, false);
            assert!(!c.promotions_enabled());
        }
        assert_eq!(c.phase(), ReadTriggerPhase::Detection);
    }

    #[test]
    fn read_heavy_flash_bound_workload_triggers_invocation() {
        let mut c = ReadTriggeredController::new(small_config());
        for _ in 0..50 {
            c.observe_op(true, false, true);
        }
        assert_eq!(c.phase(), ReadTriggerPhase::Invocation);
        assert!(c.promotions_enabled());
    }

    #[test]
    fn invocation_continues_while_ratio_improves() {
        let mut c = ReadTriggeredController::new(small_config());
        // Trigger invocation.
        for _ in 0..50 {
            c.observe_op(true, false, true);
        }
        // Epoch 1: 50% of reads now come from NVM (improvement).
        for i in 0..100 {
            c.observe_op(true, i % 2 == 0, i % 2 == 1);
        }
        assert_eq!(c.phase(), ReadTriggerPhase::Invocation);
        // Epoch 2: ratio drops back — controller cools down.
        for _ in 0..100 {
            c.observe_op(true, false, true);
        }
        assert_eq!(c.phase(), ReadTriggerPhase::Cooldown);
        assert!(!c.promotions_enabled());
    }

    #[test]
    fn cooldown_returns_to_detection() {
        let mut c = ReadTriggeredController::new(small_config());
        for _ in 0..50 {
            c.observe_op(true, false, true);
        }
        // Immediately fail the first epoch (no improvement: all flash).
        for _ in 0..100 {
            c.observe_op(true, false, true);
        }
        assert_eq!(c.phase(), ReadTriggerPhase::Cooldown);
        for _ in 0..200 {
            c.observe_op(true, false, true);
        }
        assert_eq!(c.phase(), ReadTriggerPhase::Detection);
    }

    #[test]
    fn scaled_down_config_shrinks_windows() {
        let scaled = ReadTriggerConfig::scaled_down(1000);
        let base = ReadTriggerConfig::default();
        assert!(scaled.epoch_ops < base.epoch_ops);
        assert!(scaled.cooldown_ops < base.cooldown_ops);
        assert!(scaled.epoch_ops >= 100);
    }
}
