//! Multi-tiered storage compaction (MSC).
//!
//! This crate implements the paper's primary contribution (§5): a
//! cost-benefit model and selection algorithm that decides *which key range*
//! to compact from NVM to flash.
//!
//! * **Benefit** — the sum of the *coldness* of the NVM objects in the
//!   range, where `coldness(j) = 1 / (clock_j + 1)` and untracked objects
//!   have coldness 1.
//! * **Cost** — flash I/O per migrated byte: `F · (2 − o) / (1 − p) + 1`,
//!   where `F` is the flash/NVM fanout of the range, `o` the fraction of
//!   flash objects that overlap the NVM range and `p` the fraction of
//!   popular (pinned) NVM objects.
//! * **MSC score** = benefit / cost. The range with the highest score is
//!   compacted.
//!
//! Three selection policies are provided, matching Figure 6 of the paper:
//! [`CompactionPolicy::Random`] (the strawman), [`CompactionPolicy::PreciseMsc`]
//! (exact but CPU-hungry) and [`CompactionPolicy::ApproxMsc`] (the default:
//! per-bucket statistics maintained incrementally by [`BucketMap`]).
//! Candidate ranges are sampled with power-of-`k` choices.
//!
//! The crate also contains the read-triggered compaction controller (§5.3)
//! that turns on promotion-oriented compactions for read-heavy workloads.
//!
//! # Example
//!
//! ```
//! use prism_compaction::{BucketMap, msc_score};
//!
//! let mut buckets = BucketMap::new(1024);
//! for id in 0..2000u64 {
//!     buckets.on_nvm_insert(id);
//! }
//! // Keys 0..100 are hot (recently read); the rest are cold.
//! for id in 0..100u64 {
//!     buckets.on_access(id);
//! }
//! let cold_range = buckets.estimate(1024, 2047, 0.25);
//! let hot_range = buckets.estimate(0, 1023, 0.25);
//! assert!(msc_score(&cold_range) >= msc_score(&hot_range));
//! ```

mod bucket;
mod jobs;
mod msc;
mod planner;
mod read_triggered;

pub use bucket::BucketMap;
pub use jobs::{
    execute_job, CompactionJob, DemoteEntry, ExecutedJob, JobKind, MergedEntry, MergedOrigin,
};
pub use msc::{msc_score, RangeStats, RangeStatsBuilder};
pub use planner::{CompactionConfig, CompactionPlanner, CompactionPolicy};
pub use read_triggered::{ReadTriggerConfig, ReadTriggerPhase, ReadTriggeredController};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Bucket estimates of NVM population track the true population for
        /// whole-bucket ranges regardless of the insert/remove pattern.
        #[test]
        fn bucket_population_is_exact_for_full_buckets(
            ops in prop::collection::vec((prop::bool::ANY, 0u64..4096), 1..600)
        ) {
            let mut buckets = BucketMap::new(1024);
            let mut live: HashSet<u64> = HashSet::new();
            for (insert, id) in ops {
                if insert {
                    if live.insert(id) {
                        buckets.on_nvm_insert(id);
                    }
                } else if live.remove(&id) {
                    buckets.on_nvm_remove(id);
                }
            }
            let stats = buckets.estimate(0, 4095, 1.0);
            prop_assert!((stats.nvm_objects - live.len() as f64).abs() < 1e-6);
        }

        /// The MSC score is higher (or equal) when a range is colder, all
        /// else being equal — the core property of the benefit model.
        #[test]
        fn colder_ranges_never_score_lower(
            nvm in 1.0f64..10_000.0,
            fanout in 0.1f64..50.0,
            overlap in 0.0f64..1.0,
            popular in 0.0f64..0.95,
            cold_a in 0.0f64..1.0,
            cold_b in 0.0f64..1.0,
        ) {
            let (colder, warmer) = if cold_a >= cold_b { (cold_a, cold_b) } else { (cold_b, cold_a) };
            let mk = |cold_fraction: f64| RangeStats {
                nvm_objects: nvm,
                flash_objects: nvm * fanout,
                benefit: nvm * cold_fraction,
                popular_fraction: popular,
                overlap_fraction: overlap,
                fanout,
            };
            prop_assert!(msc_score(&mk(colder)) >= msc_score(&mk(warmer)) - 1e-12);
        }

        /// Higher flash overlap (more stale data to drop) never lowers the
        /// score, and higher fanout never raises it.
        #[test]
        fn cost_model_monotonicity(
            nvm in 1.0f64..10_000.0,
            benefit in 0.0f64..10_000.0,
            popular in 0.0f64..0.95,
            o1 in 0.0f64..1.0,
            o2 in 0.0f64..1.0,
            f1 in 0.1f64..50.0,
            f2 in 0.1f64..50.0,
        ) {
            let mk = |o: f64, f: f64| RangeStats {
                nvm_objects: nvm,
                flash_objects: nvm * f,
                benefit,
                popular_fraction: popular,
                overlap_fraction: o,
                fanout: f,
            };
            let (hi_o, lo_o) = if o1 >= o2 { (o1, o2) } else { (o2, o1) };
            prop_assert!(msc_score(&mk(hi_o, f1)) >= msc_score(&mk(lo_o, f1)) - 1e-12);
            let (hi_f, lo_f) = if f1 >= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(msc_score(&mk(o1, lo_f)) >= msc_score(&mk(o1, hi_f)) - 1e-12);
        }
    }
}
